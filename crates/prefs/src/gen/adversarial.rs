//! The Theorem-1 adversarial construction.
//!
//! Theorem 1 (Wu, IPPS 2016): *for any balanced k-partite graph with an even
//! number of nodes and k > 2 there exist preference lists under which no
//! stable binary matching exists, although a perfect matching does.*
//!
//! The constructive proof defines lists where
//!
//! 1. one node `u` of gender 0 is ranked **last** by every other node, and
//! 2. within the remaining `k − 1` genders, every node is the **top** choice
//!    of exactly one node from a *different* gender among those `k − 1`.
//!
//! Then whatever node `m` is matched with `u`, some third-gender node `w`
//! has `m` as its top choice, and `(m, w)` is a blocking pair: `w` prefers
//! `m` to anything (top), and `m` prefers `w` to `u` (last).
//!
//! Binary matching in a k-partite graph gives every node a single total
//! order over *all* nodes of other genders (paper Fig. 1), so the natural
//! encoding is a [`RoommatesInstance`] whose same-gender pairs are
//! unacceptable — exactly the reduction §III-B uses.

use crate::RoommatesInstance;

/// Node numbering: participant `g·n + i` is member `i` of gender `g`.
fn pid(g: usize, i: usize, n: usize) -> u32 {
    (g * n + i) as u32
}

/// Successor in the top-choice cycle over genders `1..k`: round-robin
/// blocks `(1, i), (2, i), …, (k-1, i), (1, i+1), …` so that consecutive
/// nodes always come from different genders (requires `k ≥ 3`).
fn cycle_successor(g: usize, i: usize, k: usize, n: usize) -> (usize, usize) {
    if g + 1 < k {
        (g + 1, i)
    } else {
        (1, (i + 1) % n)
    }
}

/// Build the Theorem-1 instance for a balanced k-partite graph (`k ≥ 3`,
/// `k·n` even is not required by the construction itself; any perfect
/// matching that exists is unstable).
///
/// Returns the instance as a roommates problem with incomplete lists. The
/// globally-despised node is participant `0` (gender 0, index 0).
pub fn theorem1_roommates(k: usize, n: usize) -> RoommatesInstance {
    assert!(k >= 3, "Theorem 1 needs k > 2");
    assert!(n >= 1, "n must be positive");
    let total = k * n;
    let mut lists: Vec<Vec<u32>> = Vec::with_capacity(total);
    for g in 0..k {
        for i in 0..n {
            let me = pid(g, i, n);
            let mut list: Vec<u32> = Vec::with_capacity((k - 1) * n);
            if g >= 1 {
                // Top choice: cycle successor within genders 1..k.
                let (sg, si) = cycle_successor(g, i, k, n);
                list.push(pid(sg, si, n));
            }
            // Everyone else from different genders, ascending, except the
            // despised node 0 and (for g >= 1) the already-placed top.
            for h in 0..k {
                if h == g {
                    continue;
                }
                for j in 0..n {
                    let q = pid(h, j, n);
                    if q == me || q == 0 || list.contains(&q) {
                        continue;
                    }
                    list.push(q);
                }
            }
            // The despised node u = participant 0 goes last for everyone
            // outside gender 0.
            if g != 0 {
                list.push(0);
            }
            lists.push(list);
        }
    }
    RoommatesInstance::from_lists(lists).expect("Theorem-1 construction is a valid instance")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn despised_node_is_last_everywhere() {
        for (k, n) in [(3, 2), (4, 2), (3, 4), (5, 3)] {
            let inst = theorem1_roommates(k, n);
            for p in 1..(k * n) as u32 {
                if (p as usize) / n == 0 {
                    // Same gender as u: u unacceptable, fine.
                    assert!(!inst.acceptable(p, 0));
                } else {
                    let list = inst.list(p);
                    assert_eq!(*list.last().unwrap(), 0, "u must be ranked last by {p}");
                }
            }
        }
    }

    #[test]
    fn top_choice_cycle_covers_other_genders() {
        let (k, n) = (4, 3);
        let inst = theorem1_roommates(k, n);
        // Every node of genders 1..k must be the top choice of exactly one
        // node from a different gender among genders 1..k.
        let mut top_count = vec![0usize; k * n];
        for g in 1..k {
            for i in 0..n {
                let p = pid(g, i, n);
                let top = inst.list(p)[0] as usize;
                assert_ne!(top / n, g, "top choice must be cross-gender");
                assert_ne!(top / n, 0, "top choice must avoid gender 0");
                top_count[top] += 1;
            }
        }
        for g in 1..k {
            for i in 0..n {
                assert_eq!(
                    top_count[pid(g, i, n) as usize],
                    1,
                    "node ({g},{i}) must be topped once"
                );
            }
        }
    }

    #[test]
    fn lists_are_complete_over_other_genders() {
        let (k, n) = (3, 2);
        let inst = theorem1_roommates(k, n);
        for p in 0..(k * n) as u32 {
            assert_eq!(
                inst.list(p).len(),
                (k - 1) * n,
                "participant {p} list length"
            );
        }
    }

    #[test]
    #[should_panic(expected = "k > 2")]
    fn rejects_bipartite() {
        let _ = theorem1_roommates(2, 2);
    }
}
