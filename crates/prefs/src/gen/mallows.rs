//! Mallows-model preference orders.
//!
//! The Mallows distribution over permutations concentrates around a
//! reference order `σ₀` with dispersion `φ ∈ (0, 1]`: a permutation at
//! Kendall-tau distance `d` from `σ₀` has probability ∝ `φ^d`. `φ = 1` is
//! uniform; `φ → 0` collapses onto the reference order. It is the standard
//! "partially-correlated preferences" workload of the matching literature,
//! complementing the popularity-weighted model in
//! [`crate::gen::correlated`]: Mallows correlates the *order* globally,
//! popularity weights correlate who sits near the top.
//!
//! Sampling uses the repeated-insertion method (RIM): item `i` of the
//! reference order is inserted at position `j ≤ i` of the growing prefix
//! with probability ∝ `φ^(i−j)` — exact and `O(n²)`.

use rand::Rng;

use crate::{BipartiteInstance, KPartiteInstance};

/// One Mallows draw around the identity reference order.
pub fn mallows_perm(n: usize, phi: f64, rng: &mut impl Rng) -> Vec<u32> {
    assert!(phi > 0.0 && phi <= 1.0, "phi must be in (0, 1]");
    let mut out: Vec<u32> = Vec::with_capacity(n);
    for i in 0..n {
        // Insertion position j in 0..=i with weight phi^(i - j).
        let mut weights = Vec::with_capacity(i + 1);
        let mut acc = 0.0f64;
        for j in 0..=i {
            acc += phi.powi((i - j) as i32);
            weights.push(acc);
        }
        let target = rng.gen_range(0.0..acc.max(f64::MIN_POSITIVE));
        let pos = weights.partition_point(|&w| w < target).min(i);
        out.insert(pos, i as u32);
    }
    out
}

/// Mallows bipartite instance: every list an independent Mallows draw
/// around the ascending reference order.
pub fn mallows_bipartite(n: usize, phi: f64, rng: &mut impl Rng) -> BipartiteInstance {
    assert!(n > 0, "n must be positive");
    let side0: Vec<Vec<u32>> = (0..n).map(|_| mallows_perm(n, phi, rng)).collect();
    let side1: Vec<Vec<u32>> = (0..n).map(|_| mallows_perm(n, phi, rng)).collect();
    BipartiteInstance::from_lists(&side0, &side1).expect("Mallows draws are permutations")
}

/// Mallows k-partite instance.
pub fn mallows_kpartite(k: usize, n: usize, phi: f64, rng: &mut impl Rng) -> KPartiteInstance {
    assert!(k >= 2, "k must be at least 2");
    assert!(n > 0, "n must be positive");
    let lists: Vec<Vec<Vec<Vec<u32>>>> = (0..k)
        .map(|g| {
            (0..n)
                .map(|_| {
                    (0..k)
                        .map(|h| {
                            if h == g {
                                Vec::new()
                            } else {
                                mallows_perm(n, phi, rng)
                            }
                        })
                        .collect()
                })
                .collect()
        })
        .collect();
    KPartiteInstance::from_lists(&lists).expect("Mallows draws are permutations")
}

/// Kendall-tau distance between a permutation and the identity (inversion
/// count), used to validate dispersion behaviour.
pub fn inversions(perm: &[u32]) -> u64 {
    let mut count = 0u64;
    for i in 0..perm.len() {
        for j in i + 1..perm.len() {
            if perm[i] > perm[j] {
                count += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn phi_one_is_roughly_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(161);
        let n = 16;
        let trials = 300;
        let mean: f64 = (0..trials)
            .map(|_| inversions(&mallows_perm(n, 1.0, &mut rng)) as f64)
            .sum::<f64>()
            / trials as f64;
        // Uniform expectation: n(n-1)/4 = 60.
        assert!(
            (mean - 60.0).abs() < 8.0,
            "phi = 1 should be uniform-ish, mean {mean}"
        );
    }

    #[test]
    fn small_phi_concentrates_near_identity() {
        let mut rng = ChaCha8Rng::seed_from_u64(162);
        let n = 16;
        let mean: f64 = (0..200)
            .map(|_| inversions(&mallows_perm(n, 0.2, &mut rng)) as f64)
            .sum::<f64>()
            / 200.0;
        assert!(
            mean < 8.0,
            "phi = 0.2 must stay close to identity, mean {mean}"
        );
        // phi ordering: smaller phi => fewer inversions.
        let mean_mid: f64 = (0..200)
            .map(|_| inversions(&mallows_perm(n, 0.8, &mut rng)) as f64)
            .sum::<f64>()
            / 200.0;
        assert!(mean < mean_mid, "dispersion must grow with phi");
    }

    #[test]
    fn draws_are_permutations() {
        let mut rng = ChaCha8Rng::seed_from_u64(163);
        for n in [1usize, 2, 7, 31] {
            let p = mallows_perm(n, 0.5, &mut rng);
            let mut sorted = p.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..n as u32).collect::<Vec<_>>());
        }
    }

    #[test]
    fn instances_valid_and_deterministic() {
        let a = mallows_bipartite(10, 0.5, &mut ChaCha8Rng::seed_from_u64(164));
        let b = mallows_bipartite(10, 0.5, &mut ChaCha8Rng::seed_from_u64(164));
        assert_eq!(a, b);
        let inst = mallows_kpartite(3, 5, 0.3, &mut ChaCha8Rng::seed_from_u64(165));
        assert_eq!(inst.k(), 3);
        assert_eq!(inst.n(), 5);
    }

    #[test]
    #[should_panic(expected = "phi must be in")]
    fn rejects_bad_phi() {
        let _ = mallows_perm(4, 0.0, &mut ChaCha8Rng::seed_from_u64(166));
    }
}
