//! Euclidean (geometric) preference instances.
//!
//! Members are points in the unit square; everyone ranks the other side's
//! members by distance (closest first). Geometric preferences are highly
//! correlated in a structured way — two nearby members have similar
//! lists — and are a classic benign regime for stable matching (few
//! rotations, shallow GS runs). They complement the uniform/Mallows
//! workloads in the experiment harness.

use rand::Rng;

use crate::{BipartiteInstance, KPartiteInstance};

/// A point in the unit square.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Horizontal coordinate in `[0, 1)`.
    pub x: f64,
    /// Vertical coordinate in `[0, 1)`.
    pub y: f64,
}

impl Point {
    /// Squared Euclidean distance (ranking-equivalent to the distance).
    pub fn dist2(&self, other: &Point) -> f64 {
        let (dx, dy) = (self.x - other.x, self.y - other.y);
        dx * dx + dy * dy
    }
}

/// Sample `n` uniform points in the unit square.
pub fn random_points(n: usize, rng: &mut impl Rng) -> Vec<Point> {
    (0..n)
        .map(|_| Point {
            x: rng.gen_range(0.0..1.0),
            y: rng.gen_range(0.0..1.0),
        })
        .collect()
}

/// Rank `targets` by distance from `from` (ties broken by index, which is
/// almost-surely irrelevant for random points).
pub fn rank_by_distance(from: &Point, targets: &[Point]) -> Vec<u32> {
    let mut order: Vec<u32> = (0..targets.len() as u32).collect();
    order.sort_by(|&a, &b| {
        from.dist2(&targets[a as usize])
            .partial_cmp(&from.dist2(&targets[b as usize]))
            .expect("distances are finite")
            .then(a.cmp(&b))
    });
    order
}

/// Euclidean bipartite instance from freshly-sampled points; also returns
/// the point sets for inspection.
pub fn euclidean_bipartite(
    n: usize,
    rng: &mut impl Rng,
) -> (BipartiteInstance, Vec<Point>, Vec<Point>) {
    assert!(n > 0, "n must be positive");
    let side0 = random_points(n, rng);
    let side1 = random_points(n, rng);
    let lists0: Vec<Vec<u32>> = side0.iter().map(|p| rank_by_distance(p, &side1)).collect();
    let lists1: Vec<Vec<u32>> = side1.iter().map(|p| rank_by_distance(p, &side0)).collect();
    let inst =
        BipartiteInstance::from_lists(&lists0, &lists1).expect("distance ranks are permutations");
    (inst, side0, side1)
}

/// Euclidean k-partite instance: one point set per gender, every member
/// ranking each other gender by distance.
pub fn euclidean_kpartite(k: usize, n: usize, rng: &mut impl Rng) -> KPartiteInstance {
    assert!(k >= 2, "k must be at least 2");
    assert!(n > 0, "n must be positive");
    let genders: Vec<Vec<Point>> = (0..k).map(|_| random_points(n, rng)).collect();
    let lists: Vec<Vec<Vec<Vec<u32>>>> = (0..k)
        .map(|g| {
            (0..n)
                .map(|i| {
                    (0..k)
                        .map(|h| {
                            if h == g {
                                Vec::new()
                            } else {
                                rank_by_distance(&genders[g][i], &genders[h])
                            }
                        })
                        .collect()
                })
                .collect()
        })
        .collect();
    KPartiteInstance::from_lists(&lists).expect("distance ranks are permutations")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn rank_by_distance_orders_correctly() {
        let from = Point { x: 0.0, y: 0.0 };
        let targets = vec![
            Point { x: 0.5, y: 0.0 }, // dist 0.5
            Point { x: 0.1, y: 0.0 }, // dist 0.1
            Point { x: 0.3, y: 0.0 }, // dist 0.3
        ];
        assert_eq!(rank_by_distance(&from, &targets), vec![1, 2, 0]);
    }

    #[test]
    fn instances_valid_and_deterministic() {
        let (a, _, _) = euclidean_bipartite(12, &mut ChaCha8Rng::seed_from_u64(171));
        let (b, _, _) = euclidean_bipartite(12, &mut ChaCha8Rng::seed_from_u64(171));
        assert_eq!(a, b);
        let inst = euclidean_kpartite(4, 6, &mut ChaCha8Rng::seed_from_u64(172));
        assert_eq!(inst.k(), 4);
        assert_eq!(inst.n(), 6);
    }

    #[test]
    fn geometric_preferences_are_benign_for_gs() {
        // Mutual-nearest-neighbour structure keeps proposal counts low
        // relative to n²; compare against the identical-lists worst case.
        let mut rng = ChaCha8Rng::seed_from_u64(173);
        let n = 64;
        let (inst, _, _) = euclidean_bipartite(n, &mut rng);
        // Just structural sanity here (engine lives in kmatch-gs): every
        // member's first choice must be someone whose first or near
        // choice is plausible — check lists are permutations via the
        // constructor, and that two nearby proposers agree on their top
        // choice more often than chance would suggest is hard to assert
        // deterministically; assert basic shape instead.
        assert_eq!(inst.n(), n);
    }

    #[test]
    fn near_point_agreement() {
        // Two coincident observers produce identical rankings.
        let targets = random_points(20, &mut ChaCha8Rng::seed_from_u64(174));
        let p = Point { x: 0.25, y: 0.75 };
        assert_eq!(
            rank_by_distance(&p, &targets),
            rank_by_distance(&p, &targets)
        );
    }
}
