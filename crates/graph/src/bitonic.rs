//! Bitonic sequences and bitonic trees (§IV-D).
//!
//! A sequence is *bitonic* if it monotonically increases and then
//! monotonically decreases (either phase may be empty): `(1,3,4,2)` and
//! `(4,3,2,1)` are bitonic, `(4,1,2,3)` is not. A labeled tree with
//! distinct node priorities is a *bitonic tree* if the label sequence along
//! the path between **every** pair of nodes is bitonic.
//!
//! Theorem 5: a bitonic binding tree prevents every *weakened* blocking
//! family. Algorithm 2 grows such trees by attaching genders in decreasing
//! priority to nodes already in the tree, yielding `(k−1)!` distinct
//! priority-based binding trees (Fig. 6).

use crate::tree::BindingTree;

/// Is `seq` bitonic (strictly increasing then strictly decreasing, either
/// phase possibly empty)?
///
/// Node labels along a tree path are distinct, so strict/non-strict
/// monotonicity coincide on the inputs we care about; we require strict to
/// surface accidental duplicates in tests.
pub fn is_bitonic_sequence(seq: &[u16]) -> bool {
    let n = seq.len();
    if n <= 2 {
        return true;
    }
    let mut i = 0;
    while i + 1 < n && seq[i] < seq[i + 1] {
        i += 1;
    }
    while i + 1 < n && seq[i] > seq[i + 1] {
        i += 1;
    }
    i + 1 == n
}

/// Is the tree bitonic: is the label path between every pair of nodes a
/// bitonic sequence?
///
/// Runs in `O(k²)` path checks of `O(k)` each — fine for gender counts.
/// An equivalent local characterization (each node has at most one neighbor
/// with a larger label, except the global maximum) is exposed as
/// [`is_bitonic_tree_local`] and tested to agree.
pub fn is_bitonic_tree(tree: &BindingTree) -> bool {
    let k = tree.k() as u16;
    for a in 0..k {
        for b in (a + 1)..k {
            if !is_bitonic_sequence(&tree.path_between(a, b)) {
                return false;
            }
        }
    }
    true
}

/// Local O(k) characterization of bitonic trees: every node other than the
/// maximum-label node has **exactly one** neighbor with a larger label.
///
/// Sketch: if some node `v` had two larger neighbors `a, b`, the path
/// `a — v — b` dips at `v` and cannot be bitonic. Conversely if every node
/// has one larger neighbor, following larger neighbors from any node yields
/// a strictly increasing path to the unique maximum, so the path between
/// any two nodes increases to its maximum label and then decreases.
pub fn is_bitonic_tree_local(tree: &BindingTree) -> bool {
    let adj = tree.adjacency();
    let max_label = (tree.k() - 1) as u16;
    for (v, neighbors) in adj.iter().enumerate() {
        let larger = neighbors.iter().filter(|&&w| w > v as u16).count();
        if v as u16 == max_label {
            if larger != 0 {
                return false;
            }
        } else if larger != 1 {
            return false;
        }
    }
    true
}

/// Count the bitonic trees among an exhaustive enumeration — used by tests
/// and experiment E12 to confirm the `(k−1)!` count of Fig. 6.
pub fn count_bitonic_trees(k: usize, max_trees: usize) -> usize {
    crate::prufer::all_trees(k, max_trees)
        .iter()
        .filter(|t| is_bitonic_tree(t))
        .count()
}

/// `(k−1)!`, the number of priority-based (bitonic) binding trees
/// (§IV-D: `T(k) = (k−1)·T(k−1)`, `T(2) = T(1) = 1`).
pub fn bitonic_tree_count(k: usize) -> Option<u128> {
    if k == 0 {
        return Some(0);
    }
    let mut acc: u128 = 1;
    for f in 1..k as u128 {
        acc = acc.checked_mul(f)?;
    }
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sequence_examples() {
        // §IV-D: "(1, 3, 4, 2), (4, 3, 2, 1), and (1, 2, 3, 4) are bitonic,
        // but (4, 1, 2, 3) is not".
        assert!(is_bitonic_sequence(&[1, 3, 4, 2]));
        assert!(is_bitonic_sequence(&[4, 3, 2, 1]));
        assert!(is_bitonic_sequence(&[1, 2, 3, 4]));
        assert!(!is_bitonic_sequence(&[4, 1, 2, 3]));
        assert!(is_bitonic_sequence(&[]));
        assert!(is_bitonic_sequence(&[7]));
        assert!(is_bitonic_sequence(&[2, 9]));
    }

    #[test]
    fn fig5_trees() {
        // Fig. 5(a): path 4-1-2-3 (0-indexed: 3-0-1-2) is NOT bitonic —
        // the path from 3 (label 2) to 4 (label 3) reads (2, 1, 0, 3).
        let unstable = BindingTree::new(4, vec![(3, 0), (0, 1), (1, 2)]).unwrap();
        assert!(!is_bitonic_tree(&unstable));
        // Fig. 5(b)-style bitonic alternative: path 2-4-3-1
        // (0-indexed labels: 1-3-2-0).
        let stable = BindingTree::new(4, vec![(1, 3), (3, 2), (2, 0)]).unwrap();
        assert!(is_bitonic_tree(&stable));
    }

    #[test]
    fn local_matches_global_for_all_small_trees() {
        for k in 2..=6 {
            for tree in crate::prufer::all_trees(k, 2000) {
                assert_eq!(
                    is_bitonic_tree(&tree),
                    is_bitonic_tree_local(&tree),
                    "disagreement on {tree}"
                );
            }
        }
    }

    #[test]
    fn bitonic_count_is_factorial() {
        // Fig. 6: T(k) = (k-1)!.
        assert_eq!(count_bitonic_trees(2, 10), 1);
        assert_eq!(count_bitonic_trees(3, 10), 2);
        assert_eq!(count_bitonic_trees(4, 50), 6);
        assert_eq!(count_bitonic_trees(5, 200), 24);
        assert_eq!(count_bitonic_trees(6, 2000), 120);
        assert_eq!(bitonic_tree_count(4), Some(6));
        assert_eq!(bitonic_tree_count(6), Some(120));
    }

    #[test]
    fn ascending_path_is_bitonic_star_depends_on_center() {
        assert!(is_bitonic_tree(&BindingTree::path(6)));
        // Star centered at the max label: every path is v — max — w,
        // increasing then decreasing: bitonic.
        assert!(is_bitonic_tree(&BindingTree::star(5, 4)));
        // Star centered elsewhere: path between two larger labels dips.
        assert!(!is_bitonic_tree(&BindingTree::star(5, 0)));
    }
}
