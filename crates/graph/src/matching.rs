//! Maximum matching in general graphs: Edmonds' blossom algorithm.
//!
//! Theorem 1 states both a negative half (no *stable* binary matching) and
//! a positive half ("there is a perfect matching"). The acceptability
//! graph of binary matching in a k-partite graph — any two cross-gender
//! members may pair — is **not** bipartite, so deciding the positive half
//! at scale needs general-graph matching. This is the classic `O(V³)`
//! blossom implementation: grow an alternating BFS forest from each free
//! vertex, contracting odd cycles (blossoms) to their base as they appear.

/// A simple undirected graph on `n` vertices, adjacency-list based.
#[derive(Debug, Clone)]
pub struct SimpleGraph {
    adj: Vec<Vec<u32>>,
}

impl SimpleGraph {
    /// An empty graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        SimpleGraph {
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.adj.len()
    }

    /// Add an undirected edge (no dedup; duplicates are harmless).
    pub fn add_edge(&mut self, a: u32, b: u32) {
        assert!(a != b, "no self-loops");
        assert!(
            (a as usize) < self.n() && (b as usize) < self.n(),
            "vertex out of range"
        );
        self.adj[a as usize].push(b);
        self.adj[b as usize].push(a);
    }

    /// Neighbors of `v`.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.adj[v as usize]
    }
}

const NONE: u32 = u32::MAX;

/// State for one run of the blossom algorithm.
struct Blossom<'g> {
    graph: &'g SimpleGraph,
    mate: Vec<u32>,
    /// BFS parent in the alternating forest.
    parent: Vec<u32>,
    /// Base vertex of the blossom containing each vertex.
    base: Vec<u32>,
    used: Vec<bool>,
    blossom: Vec<bool>,
}

impl<'g> Blossom<'g> {
    fn lca(&self, mut a: u32, mut b: u32) -> u32 {
        let n = self.graph.n();
        let mut on_path = vec![false; n];
        // Walk up from a marking bases.
        loop {
            a = self.base[a as usize];
            on_path[a as usize] = true;
            if self.mate[a as usize] == NONE {
                break;
            }
            a = self.parent[self.mate[a as usize] as usize];
        }
        // Walk up from b until a marked base.
        loop {
            b = self.base[b as usize];
            if on_path[b as usize] {
                return b;
            }
            b = self.parent[self.mate[b as usize] as usize];
        }
    }

    fn mark_path(&mut self, mut v: u32, b: u32, mut child: u32) {
        while self.base[v as usize] != b {
            self.blossom[self.base[v as usize] as usize] = true;
            self.blossom[self.base[self.mate[v as usize] as usize] as usize] = true;
            self.parent[v as usize] = child;
            child = self.mate[v as usize];
            v = self.parent[self.mate[v as usize] as usize];
        }
    }

    /// BFS from `root` looking for an augmenting path; returns its
    /// endpoint or `NONE`.
    fn find_path(&mut self, root: u32) -> u32 {
        let n = self.graph.n();
        self.used.iter_mut().for_each(|u| *u = false);
        self.parent.iter_mut().for_each(|p| *p = NONE);
        for (i, b) in self.base.iter_mut().enumerate() {
            *b = i as u32;
        }
        self.used[root as usize] = true;
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(root);
        while let Some(v) = queue.pop_front() {
            for idx in 0..self.graph.neighbors(v).len() {
                let to = self.graph.neighbors(v)[idx];
                if self.base[v as usize] == self.base[to as usize] || self.mate[v as usize] == to {
                    continue;
                }
                if to == root
                    || (self.mate[to as usize] != NONE
                        && self.parent[self.mate[to as usize] as usize] != NONE)
                {
                    // Odd cycle: contract the blossom.
                    let cur_base = self.lca(v, to);
                    self.blossom.iter_mut().for_each(|b| *b = false);
                    self.mark_path(v, cur_base, to);
                    self.mark_path(to, cur_base, v);
                    for i in 0..n as u32 {
                        if self.blossom[self.base[i as usize] as usize] {
                            self.base[i as usize] = cur_base;
                            if !self.used[i as usize] {
                                self.used[i as usize] = true;
                                queue.push_back(i);
                            }
                        }
                    }
                } else if self.parent[to as usize] == NONE {
                    self.parent[to as usize] = v;
                    if self.mate[to as usize] == NONE {
                        return to; // Augmenting path found.
                    }
                    let next = self.mate[to as usize];
                    self.used[next as usize] = true;
                    queue.push_back(next);
                }
            }
        }
        NONE
    }
}

/// Maximum matching of a general graph; returns `mate[v]` with `u32::MAX`
/// for unmatched vertices.
pub fn maximum_matching(graph: &SimpleGraph) -> Vec<u32> {
    let n = graph.n();
    let mut state = Blossom {
        graph,
        mate: vec![NONE; n],
        parent: vec![NONE; n],
        base: (0..n as u32).collect(),
        used: vec![false; n],
        blossom: vec![false; n],
    };
    for v in 0..n as u32 {
        if state.mate[v as usize] != NONE {
            continue;
        }
        let mut u = state.find_path(v);
        // Augment along parent pointers.
        while u != NONE {
            let pv = state.parent[u as usize];
            let ppv = state.mate[pv as usize];
            state.mate[u as usize] = pv;
            state.mate[pv as usize] = u;
            u = ppv;
        }
    }
    state.mate
}

/// Size of a maximum matching.
pub fn maximum_matching_size(graph: &SimpleGraph) -> usize {
    maximum_matching(graph)
        .iter()
        .filter(|&&m| m != NONE)
        .count()
        / 2
}

/// Does the graph admit a perfect matching?
pub fn has_perfect_matching(graph: &SimpleGraph) -> bool {
    let n = graph.n();
    n.is_multiple_of(2) && maximum_matching_size(graph) * 2 == n
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// Exponential reference: maximum matching size by branch and bound.
    fn brute_max_matching(graph: &SimpleGraph) -> usize {
        fn recurse(graph: &SimpleGraph, used: &mut Vec<bool>, v: u32) -> usize {
            let n = graph.n() as u32;
            if v == n {
                return 0;
            }
            if used[v as usize] {
                return recurse(graph, used, v + 1);
            }
            // Skip v.
            let mut best = recurse(graph, used, v + 1);
            // Match v with an unused neighbor.
            used[v as usize] = true;
            for &w in graph.neighbors(v) {
                if w > v && !used[w as usize] {
                    used[w as usize] = true;
                    best = best.max(1 + recurse(graph, used, v + 1));
                    used[w as usize] = false;
                }
            }
            used[v as usize] = false;
            best
        }
        recurse(graph, &mut vec![false; graph.n()], 0)
    }

    #[test]
    fn triangle_plus_pendant() {
        // Triangle 0-1-2 with pendant 3 attached to 0: perfect matching
        // exists (1-2, 0-3).
        let mut g = SimpleGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(0, 2);
        g.add_edge(0, 3);
        assert!(has_perfect_matching(&g));
        let mate = maximum_matching(&g);
        assert_eq!(mate[3], 0);
        assert_eq!(mate[0], 3);
    }

    #[test]
    fn odd_cycle_matching() {
        // C5: maximum matching 2, no perfect matching.
        let mut g = SimpleGraph::new(5);
        for i in 0..5 {
            g.add_edge(i, (i + 1) % 5);
        }
        assert_eq!(maximum_matching_size(&g), 2);
        assert!(!has_perfect_matching(&g));
    }

    #[test]
    fn petersen_graph_is_perfectly_matchable() {
        // The Petersen graph (3-regular, blossom-rich) has a perfect
        // matching.
        let mut g = SimpleGraph::new(10);
        for i in 0..5u32 {
            g.add_edge(i, (i + 1) % 5); // outer C5
            g.add_edge(5 + i, 5 + (i + 2) % 5); // inner pentagram
            g.add_edge(i, 5 + i); // spokes
        }
        assert!(has_perfect_matching(&g));
    }

    #[test]
    fn agrees_with_brute_force_on_random_graphs() {
        let mut rng = ChaCha8Rng::seed_from_u64(181);
        for n in [4usize, 6, 8, 10] {
            for _ in 0..30 {
                let mut g = SimpleGraph::new(n);
                for a in 0..n as u32 {
                    for b in a + 1..n as u32 {
                        if rng.gen_bool(0.35) {
                            g.add_edge(a, b);
                        }
                    }
                }
                assert_eq!(
                    maximum_matching_size(&g),
                    brute_max_matching(&g),
                    "n = {n}, graph {:?}",
                    g.adj
                );
            }
        }
    }

    #[test]
    fn matching_is_valid() {
        let mut rng = ChaCha8Rng::seed_from_u64(182);
        let n = 20;
        let mut g = SimpleGraph::new(n);
        for a in 0..n as u32 {
            for b in a + 1..n as u32 {
                if rng.gen_bool(0.2) {
                    g.add_edge(a, b);
                }
            }
        }
        let mate = maximum_matching(&g);
        for v in 0..n as u32 {
            let m = mate[v as usize];
            if m != u32::MAX {
                assert_eq!(mate[m as usize], v, "symmetry");
                assert!(g.neighbors(v).contains(&m), "matched along an edge");
            }
        }
    }

    #[test]
    fn empty_and_disconnected() {
        let g = SimpleGraph::new(4);
        assert_eq!(maximum_matching_size(&g), 0);
        assert!(!has_perfect_matching(&g));
        let mut g = SimpleGraph::new(4);
        g.add_edge(0, 1);
        assert_eq!(maximum_matching_size(&g), 1);
    }
}
