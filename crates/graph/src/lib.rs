//! # kmatch-graph — graph substrate for binding-tree construction
//!
//! Algorithm 1 of the paper ("iterative binding GS") runs one Gale–Shapley
//! pass per edge of a **spanning tree over the gender set**; everything
//! about those trees lives here:
//!
//! * [`tree::BindingTree`] — a labeled tree on `k` genders whose edges carry
//!   a proposer → responder orientation; builders for the topologies the
//!   paper discusses (path, star, balanced, random).
//! * [`prufer`] — Prüfer-sequence encoding/decoding: Cayley's `k^{k−2}`
//!   labeled trees (§IV-B), uniform random tree sampling, and exhaustive
//!   enumeration for small `k`.
//! * [`bitonic`] — bitonic sequences and bitonic trees (§IV-D): the class
//!   of binding trees that defeats *weakened* blocking families (Theorem 5).
//! * [`schedule`] — parallel binding schedules: a proper edge coloring of a
//!   tree into exactly `Δ` rounds (Corollary 1) and the even–odd 2-round
//!   path schedule of Fig. 4 (Corollary 2).
//! * [`union_find`] — the equivalence-relation engine that merges binary
//!   matching pairs into k-tuples ("in the same matching tuple", §IV-A).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitonic;
pub mod matching;
pub mod maxflow;
pub mod prufer;
pub mod schedule;
pub mod tree;
pub mod union_find;

pub use bitonic::{is_bitonic_sequence, is_bitonic_tree};
pub use matching::{has_perfect_matching, maximum_matching, maximum_matching_size, SimpleGraph};
pub use maxflow::{min_weight_closed_set, FlowNetwork};
pub use prufer::{all_trees, decode_prufer, encode_prufer, random_tree, tree_count};
pub use schedule::{even_odd_path_schedule, tree_edge_coloring, Schedule};
pub use tree::{BindingTree, TreeError};
pub use union_find::UnionFind;
