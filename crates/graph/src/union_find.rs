//! Disjoint-set forest with union by rank and path halving.
//!
//! Algorithm 1 derives the matching k-tuples as the equivalence classes of
//! the relation "in the same matching tuple" over all GS pairs (§IV-A).
//! A union–find merges the `(k−1)·n` pairs in near-constant amortized time
//! per operation; DESIGN.md benchmarks this against the naive relational
//! closure as an ablation.

/// Disjoint-set forest over `0..len` elements.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// Create `len` singleton sets.
    pub fn new(len: usize) -> Self {
        assert!(len <= u32::MAX as usize, "too many elements");
        UnionFind {
            parent: (0..len as u32).collect(),
            rank: vec![0; len],
            components: len,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when the structure tracks no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Current number of disjoint sets.
    pub fn components(&self) -> usize {
        self.components
    }

    /// Representative of `x`'s set (path halving).
    pub fn find(&mut self, mut x: u32) -> u32 {
        loop {
            let p = self.parent[x as usize];
            if p == x {
                return x;
            }
            let gp = self.parent[p as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
    }

    /// Merge the sets of `a` and `b`; returns `false` if already joined.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        self.components -= 1;
        true
    }

    /// Are `a` and `b` in the same set?
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Group all elements by representative; classes are returned in order
    /// of their smallest element, each class sorted ascending.
    ///
    /// This is the "derive equivalence classes" step of Algorithms 1 and 2.
    pub fn classes(&mut self) -> Vec<Vec<u32>> {
        let len = self.len();
        let mut by_root: Vec<Vec<u32>> = vec![Vec::new(); len];
        for x in 0..len as u32 {
            let r = self.find(x);
            by_root[r as usize].push(x);
        }
        let mut out: Vec<Vec<u32>> = by_root.into_iter().filter(|c| !c.is_empty()).collect();
        out.sort_by_key(|c| c[0]);
        out
    }
}

/// Naive relational-closure baseline used by the ablation bench: repeatedly
/// sweep the pair list merging classes stored as plain vectors.
///
/// Semantically identical to [`UnionFind`]-based class derivation; its cost
/// is `O(pairs · classes)` in the worst case.
pub fn classes_naive(len: usize, pairs: &[(u32, u32)]) -> Vec<Vec<u32>> {
    let mut class_of: Vec<usize> = (0..len).collect();
    for &(a, b) in pairs {
        let (ca, cb) = (class_of[a as usize], class_of[b as usize]);
        if ca == cb {
            continue;
        }
        let (keep, fold) = if ca < cb { (ca, cb) } else { (cb, ca) };
        for c in class_of.iter_mut() {
            if *c == fold {
                *c = keep;
            }
        }
    }
    let mut by_class: Vec<Vec<u32>> = vec![Vec::new(); len];
    for x in 0..len {
        by_class[class_of[x]].push(x as u32);
    }
    let mut out: Vec<Vec<u32>> = by_class.into_iter().filter(|c| !c.is_empty()).collect();
    out.sort_by_key(|c| c[0]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_reduces_components() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.components(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(3, 4));
        assert!(!uf.union(1, 0), "repeat union is a no-op");
        assert_eq!(uf.components(), 3);
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(0, 3));
    }

    #[test]
    fn classes_partition_elements() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 2);
        uf.union(2, 4);
        uf.union(1, 5);
        let classes = uf.classes();
        assert_eq!(classes, vec![vec![0, 2, 4], vec![1, 5], vec![3]]);
    }

    #[test]
    fn transitivity_through_chain() {
        // The §IV-A equivalence relation: (m,w) and (w,u) imply (m,u).
        let mut uf = UnionFind::new(6);
        uf.union(0, 2); // m—w
        uf.union(2, 4); // w—u
        assert!(uf.connected(0, 4));
    }

    #[test]
    fn naive_matches_union_find() {
        let pairs = [(0u32, 3u32), (1, 4), (3, 6), (2, 5), (4, 7)];
        let mut uf = UnionFind::new(9);
        for &(a, b) in &pairs {
            uf.union(a, b);
        }
        assert_eq!(uf.classes(), classes_naive(9, &pairs));
    }

    #[test]
    fn empty_and_singletons() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert!(uf.classes().is_empty());
        let mut uf = UnionFind::new(3);
        assert_eq!(uf.classes().len(), 3);
    }
}
