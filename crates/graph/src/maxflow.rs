//! Maximum flow (Dinic's algorithm) and the project-selection reduction.
//!
//! Substrate for the polynomial egalitarian stable-marriage solver in
//! `kmatch-gs`: the minimum-weight **closed subset** of a precedence DAG
//! (a.k.a. project selection / maximum-weight closure) reduces to an
//! s–t minimum cut, which Dinic computes in `O(V²E)` — far below those
//! bounds on the sparse DAGs that arise from rotation posets.

/// A flow network with integer capacities.
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    /// Edge list: `(to, capacity)`; reverse edges interleaved at `i ^ 1`.
    to: Vec<u32>,
    cap: Vec<i64>,
    /// Head of adjacency list per vertex into `next`.
    head: Vec<i32>,
    next: Vec<i32>,
    n: usize,
}

impl FlowNetwork {
    /// An empty network on `n` vertices.
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            to: Vec::new(),
            cap: Vec::new(),
            head: vec![-1; n],
            next: Vec::new(),
            n,
        }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Add a directed edge `from → to` with `capacity`; a zero-capacity
    /// reverse edge is added automatically.
    pub fn add_edge(&mut self, from: u32, to: u32, capacity: i64) {
        assert!(capacity >= 0, "capacities must be non-negative");
        assert!(
            (from as usize) < self.n && (to as usize) < self.n,
            "vertex out of range"
        );
        for (t, c, h) in [(to, capacity, from), (from, 0, to)] {
            let idx = self.to.len() as i32;
            self.to.push(t);
            self.cap.push(c);
            self.next.push(self.head[h as usize]);
            self.head[h as usize] = idx;
        }
    }

    fn bfs_levels(&self, s: u32, t: u32) -> Option<Vec<i32>> {
        let mut level = vec![-1i32; self.n];
        level[s as usize] = 0;
        let mut queue = std::collections::VecDeque::from([s]);
        while let Some(v) = queue.pop_front() {
            let mut e = self.head[v as usize];
            while e >= 0 {
                let u = self.to[e as usize];
                if self.cap[e as usize] > 0 && level[u as usize] < 0 {
                    level[u as usize] = level[v as usize] + 1;
                    queue.push_back(u);
                }
                e = self.next[e as usize];
            }
        }
        (level[t as usize] >= 0).then_some(level)
    }

    fn dfs_push(&mut self, v: u32, t: u32, pushed: i64, level: &[i32], iter: &mut [i32]) -> i64 {
        if v == t {
            return pushed;
        }
        while iter[v as usize] >= 0 {
            let e = iter[v as usize];
            let u = self.to[e as usize];
            if self.cap[e as usize] > 0 && level[u as usize] == level[v as usize] + 1 {
                let d = self.dfs_push(u, t, pushed.min(self.cap[e as usize]), level, iter);
                if d > 0 {
                    self.cap[e as usize] -= d;
                    self.cap[(e ^ 1) as usize] += d;
                    return d;
                }
            }
            iter[v as usize] = self.next[e as usize];
        }
        0
    }

    /// Maximum s–t flow (mutates residual capacities).
    pub fn max_flow(&mut self, s: u32, t: u32) -> i64 {
        assert_ne!(s, t, "source and sink must differ");
        let mut flow = 0i64;
        while let Some(level) = self.bfs_levels(s, t) {
            let mut iter: Vec<i32> = self.head.clone();
            loop {
                let pushed = self.dfs_push(s, t, i64::MAX, &level, &mut iter);
                if pushed == 0 {
                    break;
                }
                flow += pushed;
            }
        }
        flow
    }

    /// After [`FlowNetwork::max_flow`], the set of vertices reachable from
    /// `s` in the residual graph — the source side of a minimum cut.
    pub fn min_cut_source_side(&self, s: u32) -> Vec<bool> {
        let mut seen = vec![false; self.n];
        seen[s as usize] = true;
        let mut stack = vec![s];
        while let Some(v) = stack.pop() {
            let mut e = self.head[v as usize];
            while e >= 0 {
                let u = self.to[e as usize];
                if self.cap[e as usize] > 0 && !seen[u as usize] {
                    seen[u as usize] = true;
                    stack.push(u);
                }
                e = self.next[e as usize];
            }
        }
        seen
    }
}

/// Minimum-weight **closed set** of a DAG: choose `S` such that every
/// predecessor of a chosen node is chosen (`pred ∈ S` for each
/// `(node, pred)` in `requires`), minimizing `Σ weight[S]`. The empty set
/// (weight 0) is always closed, so the optimum is ≤ 0.
///
/// Standard closure reduction: source → negative-weight nodes (cap −w),
/// positive-weight nodes → sink (cap w), `node → pred` edges ∞.
pub fn min_weight_closed_set(weights: &[i64], requires: &[(u32, u32)]) -> (Vec<bool>, i64) {
    let r = weights.len();
    let (s, t) = (r as u32, r as u32 + 1);
    let mut net = FlowNetwork::new(r + 2);
    const INF: i64 = i64::MAX / 4;
    for (i, &w) in weights.iter().enumerate() {
        match w.cmp(&0) {
            std::cmp::Ordering::Less => net.add_edge(s, i as u32, -w),
            std::cmp::Ordering::Greater => net.add_edge(i as u32, t, w),
            std::cmp::Ordering::Equal => {}
        }
    }
    for &(node, pred) in requires {
        net.add_edge(node, pred, INF);
    }
    net.max_flow(s, t);
    let side = net.min_cut_source_side(s);
    let chosen: Vec<bool> = (0..r).map(|i| side[i]).collect();
    let total: i64 = weights
        .iter()
        .enumerate()
        .filter(|&(i, _)| chosen[i])
        .map(|(_, &w)| w)
        .sum();
    (chosen, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_max_flow() {
        // s=0, t=3: two disjoint augmenting paths of capacity 2 and 3.
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 2);
        net.add_edge(1, 3, 2);
        net.add_edge(0, 2, 3);
        net.add_edge(2, 3, 3);
        assert_eq!(net.max_flow(0, 3), 5);
    }

    #[test]
    fn bottleneck_flow() {
        // Diamond with a 1-capacity bridge.
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 10);
        net.add_edge(0, 2, 10);
        net.add_edge(1, 3, 1);
        net.add_edge(2, 3, 1);
        net.add_edge(1, 2, 10);
        assert_eq!(net.max_flow(0, 3), 2);
        let side = net.min_cut_source_side(0);
        assert!(side[0] && !side[3]);
    }

    #[test]
    fn closed_set_basics() {
        // Nodes: 0 (-5), 1 (+3), 2 (-1); choosing 0 requires 1.
        // Options: {} = 0, {1} = 3, {0,1} = -2, {2} = -1, {0,1,2} = -3, …
        let (chosen, total) = min_weight_closed_set(&[-5, 3, -1], &[(0, 1)]);
        assert_eq!(total, -3);
        assert!(chosen[0] && chosen[1] && chosen[2]);
    }

    #[test]
    fn closed_set_respects_precedence() {
        // Node 0 is very negative but requires an even more positive 1.
        let (chosen, total) = min_weight_closed_set(&[-5, 10], &[(0, 1)]);
        assert_eq!(total, 0, "taking 0 would cost +5 net; empty set wins");
        assert!(!chosen[0] && !chosen[1]);
    }

    #[test]
    fn closed_set_exhaustive_cross_check() {
        // Brute force over all subsets of a 6-node random-ish DAG.
        let weights: Vec<i64> = vec![-4, 7, -3, 2, -6, 1];
        let requires: Vec<(u32, u32)> = vec![(0, 1), (2, 1), (4, 3), (4, 2), (5, 0)];
        let (chosen, total) = min_weight_closed_set(&weights, &requires);
        // Verify closure.
        for &(node, pred) in &requires {
            assert!(!chosen[node as usize] || chosen[pred as usize]);
        }
        // Brute force.
        let mut best = 0i64;
        for mask in 0u32..64 {
            let ok = requires
                .iter()
                .all(|&(n, p)| mask & (1 << n) == 0 || mask & (1 << p) != 0);
            if ok {
                let w: i64 = (0..6)
                    .filter(|&i| mask & (1 << i) != 0)
                    .map(|i| weights[i])
                    .sum();
                best = best.min(w);
            }
        }
        assert_eq!(total, best);
    }
}
