//! Parallel binding schedules (§IV-C).
//!
//! Two bindings `GS(i, j)` and `GS(i', j')` can run concurrently iff their
//! gender sets are disjoint, so a parallel execution plan is a partition of
//! the binding tree's edges into rounds of pairwise node-disjoint edges —
//! i.e. a **proper edge coloring**. Trees are class-1 graphs (χ′ = Δ), so:
//!
//! * [`tree_edge_coloring`] produces exactly `Δ` rounds for any tree —
//!   realizing Corollary 1's `Δ·n²` iteration bound with `k − 1` processors;
//! * [`even_odd_path_schedule`] produces the 2-round plan of Fig. 4 /
//!   Corollary 2 for path-shaped trees (`Δ = 2`).

use crate::tree::BindingTree;

/// A parallel execution plan: `rounds[r]` lists the indices (into
/// [`BindingTree::edges`]) of the bindings executed concurrently in round
/// `r`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    rounds: Vec<Vec<usize>>,
}

impl Schedule {
    /// Build a schedule from explicit rounds, validating that it is a
    /// partition of all edges into node-disjoint groups.
    pub fn new(tree: &BindingTree, rounds: Vec<Vec<usize>>) -> Result<Self, String> {
        let edge_count = tree.edges().len();
        let mut seen_edge = vec![false; edge_count];
        for (r, round) in rounds.iter().enumerate() {
            let mut busy = vec![false; tree.k()];
            for &e in round {
                let Some(&(a, b)) = tree.edges().get(e) else {
                    return Err(format!("round {r} references missing edge {e}"));
                };
                if seen_edge[e] {
                    return Err(format!("edge {e} scheduled twice"));
                }
                seen_edge[e] = true;
                for node in [a as usize, b as usize] {
                    if busy[node] {
                        return Err(format!("round {r}: gender {node} used by two bindings"));
                    }
                    busy[node] = true;
                }
            }
        }
        if let Some(missing) = seen_edge.iter().position(|&s| !s) {
            return Err(format!("edge {missing} never scheduled"));
        }
        Ok(Schedule { rounds })
    }

    /// Number of parallel rounds (the schedule's makespan in GS passes).
    pub fn depth(&self) -> usize {
        self.rounds.len()
    }

    /// The rounds, each a set of edge indices.
    pub fn rounds(&self) -> &[Vec<usize>] {
        &self.rounds
    }

    /// Maximum number of concurrent bindings in any round (processor
    /// requirement).
    pub fn width(&self) -> usize {
        self.rounds.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Degenerate sequential schedule: one edge per round, in tree order.
    pub fn sequential(tree: &BindingTree) -> Self {
        Schedule {
            rounds: (0..tree.edges().len()).map(|e| vec![e]).collect(),
        }
    }
}

/// Proper edge coloring of a tree with exactly `Δ` colors, as a schedule
/// of `Δ` rounds.
///
/// DFS from node 0: at each node the incident child edges take the colors
/// `0, 1, …` skipping the color of the edge to the parent. Every node sees
/// at most `Δ` incident edges, so `Δ` colors suffice — trees are class 1.
pub fn tree_edge_coloring(tree: &BindingTree) -> Schedule {
    let delta = tree.max_degree();
    let k = tree.k();
    // Map unordered node pair -> edge index.
    let adj = tree.adjacency();
    let edge_index = |a: u16, b: u16| -> usize {
        tree.edges()
            .iter()
            .position(|&(x, y)| (x, y) == (a, b) || (x, y) == (b, a))
            .expect("adjacent nodes share an edge")
    };
    let mut rounds: Vec<Vec<usize>> = vec![Vec::new(); delta];
    let mut colored = vec![usize::MAX; tree.edges().len()];
    // Iterative DFS carrying the parent edge's color.
    let mut stack: Vec<(u16, u16, usize)> = vec![(0, u16::MAX, usize::MAX)];
    let mut visited = vec![false; k];
    while let Some((v, parent, parent_color)) = stack.pop() {
        visited[v as usize] = true;
        let mut color = 0usize;
        for &w in &adj[v as usize] {
            if w == parent || visited[w as usize] {
                continue;
            }
            if color == parent_color {
                color += 1;
            }
            let e = edge_index(v, w);
            debug_assert_eq!(colored[e], usize::MAX);
            colored[e] = color;
            rounds[color].push(e);
            stack.push((w, v, color));
            color += 1;
        }
    }
    Schedule::new(tree, rounds).expect("DFS edge coloring is proper")
}

/// The even–odd two-round schedule for a path-shaped tree (Fig. 4):
/// round 0 runs every second path edge, round 1 the rest.
///
/// Returns `None` when the tree is not a path. For the canonical
/// [`BindingTree::path`] labeling this puts edges `0-1, 2-3, …` (genders
/// `2i ↔ 2i+1`) in round 0 and edges `1-2, 3-4, …` in round 1, exactly the
/// paper's pairing of even-labeled genders with their left then right
/// neighbors.
pub fn even_odd_path_schedule(tree: &BindingTree) -> Option<Schedule> {
    if !tree.is_path() {
        return None;
    }
    if tree.k() == 2 {
        return Some(Schedule::new(tree, vec![vec![0]]).expect("single edge"));
    }
    // Find an endpoint and walk the path.
    let degrees = tree.degrees();
    let start = degrees
        .iter()
        .position(|&d| d == 1)
        .expect("a path has endpoints") as u16;
    let adj = tree.adjacency();
    let mut order = vec![start];
    let mut prev = u16::MAX;
    let mut cur = start;
    while order.len() < tree.k() {
        let next = *adj[cur as usize]
            .iter()
            .find(|&&w| w != prev)
            .expect("path continues");
        order.push(next);
        prev = cur;
        cur = next;
    }
    let edge_index = |a: u16, b: u16| -> usize {
        tree.edges()
            .iter()
            .position(|&(x, y)| (x, y) == (a, b) || (x, y) == (b, a))
            .expect("consecutive path nodes share an edge")
    };
    let mut rounds = vec![Vec::new(), Vec::new()];
    for (step, pair) in order.windows(2).enumerate() {
        rounds[step % 2].push(edge_index(pair[0], pair[1]));
    }
    Some(Schedule::new(tree, rounds).expect("alternating path edges are disjoint"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn coloring_depth_equals_delta() {
        for tree in [
            BindingTree::path(8),
            BindingTree::star(8, 0),
            BindingTree::star(8, 5),
            BindingTree::balanced_binary(9),
        ] {
            let s = tree_edge_coloring(&tree);
            assert_eq!(s.depth(), tree.max_degree(), "depth must be Δ for {tree}");
        }
    }

    #[test]
    fn coloring_valid_on_random_trees() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        for _ in 0..30 {
            let tree = crate::prufer::random_tree(12, &mut rng);
            let s = tree_edge_coloring(&tree);
            assert_eq!(s.depth(), tree.max_degree());
            // Schedule::new already validated partition + disjointness.
            let total: usize = s.rounds().iter().map(Vec::len).sum();
            assert_eq!(total, 11);
        }
    }

    #[test]
    fn even_odd_is_two_rounds() {
        for k in 3..=12 {
            let tree = BindingTree::path(k);
            let s = even_odd_path_schedule(&tree).expect("path accepts even-odd");
            assert_eq!(s.depth(), 2, "Corollary 2: two rounds for k = {k}");
        }
        // k = 2: single binding, one round.
        assert_eq!(
            even_odd_path_schedule(&BindingTree::path(2))
                .unwrap()
                .depth(),
            1
        );
    }

    #[test]
    fn even_odd_round0_is_even_edges() {
        let tree = BindingTree::path(7);
        let s = even_odd_path_schedule(&tree).unwrap();
        // Canonical path: edge i joins genders i and i+1.
        assert_eq!(s.rounds()[0], vec![0, 2, 4]);
        assert_eq!(s.rounds()[1], vec![1, 3, 5]);
    }

    #[test]
    fn even_odd_rejects_non_path() {
        assert!(even_odd_path_schedule(&BindingTree::star(5, 0)).is_none());
    }

    #[test]
    fn schedule_validation_catches_conflicts() {
        let tree = BindingTree::path(4);
        // Edges 0 (0-1) and 1 (1-2) share gender 1.
        assert!(Schedule::new(&tree, vec![vec![0, 1], vec![2]]).is_err());
        // Missing edge.
        assert!(Schedule::new(&tree, vec![vec![0], vec![2]]).is_err());
        // Duplicate edge.
        assert!(Schedule::new(&tree, vec![vec![0], vec![0], vec![1, 2]]).is_err());
        // Out-of-range edge index.
        assert!(Schedule::new(&tree, vec![vec![0], vec![1], vec![9]]).is_err());
    }

    #[test]
    fn sequential_schedule_shape() {
        let tree = BindingTree::star(6, 2);
        let s = Schedule::sequential(&tree);
        assert_eq!(s.depth(), 5);
        assert_eq!(s.width(), 1);
    }

    #[test]
    fn width_counts_processors() {
        let tree = BindingTree::path(9);
        let s = even_odd_path_schedule(&tree).unwrap();
        assert_eq!(s.width(), 4);
    }
}
