//! Prüfer sequences: the bijection behind Cayley's formula.
//!
//! §IV-B: "Based on Cayley's formula, there are `k^{k−2}` different binding
//! trees to bind k genders." The Prüfer code realizes that count as a
//! bijection between labeled trees on `k` nodes and sequences in
//! `{0..k}^{k−2}`, giving us uniform random tree sampling (one uniform
//! sequence → one uniform tree) and exhaustive enumeration for small `k`
//! (experiment E13, and the "every tree yields a stable matching" sweep of
//! E5).

use rand::Rng;

use crate::tree::BindingTree;

/// Cayley's count of labeled trees on `k` nodes: `k^{k−2}` (with the
/// conventional values 1 for `k ∈ {1, 2}`). Returns `None` on overflow.
pub fn tree_count(k: usize) -> Option<u128> {
    match k {
        0 => Some(0),
        1 | 2 => Some(1),
        _ => {
            let mut acc: u128 = 1;
            for _ in 0..k - 2 {
                acc = acc.checked_mul(k as u128)?;
            }
            Some(acc)
        }
    }
}

/// Decode a Prüfer sequence of length `k − 2` (entries in `0..k`) into a
/// labeled tree on `k` nodes. Edges are oriented low → high label.
///
/// # Panics
/// If any entry is out of range or `k < 2` (sequence length + 2).
pub fn decode_prufer(seq: &[u16], k: usize) -> BindingTree {
    assert!(k >= 2, "need k >= 2");
    assert_eq!(
        seq.len(),
        k - 2,
        "Prüfer sequence for k nodes has length k-2"
    );
    let mut degree = vec![1u32; k];
    for &s in seq {
        assert!((s as usize) < k, "sequence entry out of range");
        degree[s as usize] += 1;
    }
    let mut edges = Vec::with_capacity(k - 1);
    // `ptr` scans for the smallest leaf; `leaf` tracks the current one.
    let mut ptr = 0usize;
    while degree[ptr] != 1 {
        ptr += 1;
    }
    let mut leaf = ptr;
    for &s in seq {
        edges.push(((leaf as u16).min(s), (leaf as u16).max(s)));
        degree[s as usize] -= 1;
        if degree[s as usize] == 1 && (s as usize) < ptr {
            leaf = s as usize;
        } else {
            ptr += 1;
            while degree[ptr] != 1 {
                ptr += 1;
            }
            leaf = ptr;
        }
    }
    edges.push((leaf as u16, (k - 1) as u16));
    BindingTree::new(k, edges).expect("Prüfer decoding always yields a tree")
}

/// Encode a labeled tree as its Prüfer sequence (length `k − 2`).
pub fn encode_prufer(tree: &BindingTree) -> Vec<u16> {
    let k = tree.k();
    if k <= 2 {
        return Vec::new();
    }
    let adj: Vec<Vec<u16>> = tree.adjacency();
    let mut degree: Vec<u32> = adj.iter().map(|a| a.len() as u32).collect();
    let mut removed = vec![false; k];
    let mut seq = Vec::with_capacity(k - 2);
    let mut ptr = 0usize;
    while degree[ptr] != 1 {
        ptr += 1;
    }
    let mut leaf = ptr;
    for _ in 0..k - 2 {
        // The unique remaining neighbor of the current leaf.
        let nb = *adj[leaf]
            .iter()
            .find(|&&w| !removed[w as usize])
            .expect("leaf has one live neighbor");
        seq.push(nb);
        removed[leaf] = true;
        degree[nb as usize] -= 1;
        if degree[nb as usize] == 1 && (nb as usize) < ptr {
            leaf = nb as usize;
        } else {
            ptr += 1;
            while ptr < k && (degree[ptr] != 1 || removed[ptr]) {
                ptr += 1;
            }
            leaf = ptr;
        }
    }
    seq
}

/// Sample a uniformly-random labeled tree on `k` nodes by decoding a
/// uniform Prüfer sequence.
pub fn random_tree(k: usize, rng: &mut impl Rng) -> BindingTree {
    assert!(k >= 2, "need k >= 2");
    let seq: Vec<u16> = (0..k.saturating_sub(2))
        .map(|_| rng.gen_range(0..k as u16))
        .collect();
    decode_prufer(&seq, k)
}

/// Enumerate **all** `k^{k−2}` labeled trees on `k` nodes by iterating every
/// Prüfer sequence. Practical for `k ≤ 8` (`8^6 = 262144` trees).
///
/// # Panics
/// If the tree count exceeds `max_trees` (a safety valve, default callers
/// pass explicit limits).
pub fn all_trees(k: usize, max_trees: usize) -> Vec<BindingTree> {
    let count = tree_count(k).expect("tree count overflow");
    assert!(
        count <= max_trees as u128,
        "k = {k} has {count} trees, over the {max_trees} limit"
    );
    if k == 2 {
        return vec![BindingTree::path(2)];
    }
    let mut out = Vec::with_capacity(count as usize);
    let mut seq = vec![0u16; k - 2];
    loop {
        out.push(decode_prufer(&seq, k));
        // Odometer increment over base-k digits.
        let mut pos = 0;
        loop {
            if pos == seq.len() {
                return out;
            }
            seq[pos] += 1;
            if (seq[pos] as usize) < k {
                break;
            }
            seq[pos] = 0;
            pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::collections::HashSet;

    #[test]
    fn cayley_counts() {
        assert_eq!(tree_count(2), Some(1));
        assert_eq!(tree_count(3), Some(3));
        assert_eq!(tree_count(4), Some(16));
        assert_eq!(tree_count(5), Some(125));
        assert_eq!(tree_count(8), Some(262144));
    }

    #[test]
    fn decode_simple_sequences() {
        // Sequence [] for k = 2: single edge.
        let t = decode_prufer(&[], 2);
        assert_eq!(t.canonical_edges(), vec![(0, 1)]);
        // Sequence [3, 3] for k = 4: star centered at 3.
        let t = decode_prufer(&[3, 3], 4);
        assert_eq!(t.canonical_edges(), vec![(0, 3), (1, 3), (2, 3)]);
        // Sequence [1, 2] for k = 4: path 0-1-2-3.
        let t = decode_prufer(&[1, 2], 4);
        assert_eq!(t.canonical_edges(), vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn encode_decode_roundtrip_exhaustive_k5() {
        for tree in all_trees(5, 200) {
            let seq = encode_prufer(&tree);
            let back = decode_prufer(&seq, 5);
            assert_eq!(back.canonical_edges(), tree.canonical_edges());
        }
    }

    #[test]
    fn encode_known_trees() {
        assert_eq!(encode_prufer(&BindingTree::star(5, 2)), vec![2, 2, 2]);
        assert_eq!(encode_prufer(&BindingTree::path(4)), vec![1, 2]);
        assert!(encode_prufer(&BindingTree::path(2)).is_empty());
    }

    #[test]
    fn enumeration_is_complete_and_distinct() {
        for k in 2..=6 {
            let trees = all_trees(k, 2000);
            assert_eq!(trees.len() as u128, tree_count(k).unwrap());
            let distinct: HashSet<Vec<(u16, u16)>> =
                trees.iter().map(|t| t.canonical_edges()).collect();
            assert_eq!(distinct.len(), trees.len(), "all {k}-trees distinct");
        }
    }

    #[test]
    fn random_tree_is_valid_and_varied() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut shapes = HashSet::new();
        for _ in 0..50 {
            let t = random_tree(6, &mut rng);
            assert_eq!(t.edges().len(), 5);
            shapes.insert(t.canonical_edges());
        }
        assert!(shapes.len() > 10, "sampling should hit many distinct trees");
    }

    #[test]
    fn roundtrip_random_large_k() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..20 {
            let t = random_tree(40, &mut rng);
            let back = decode_prufer(&encode_prufer(&t), 40);
            assert_eq!(back.canonical_edges(), t.canonical_edges());
        }
    }
}
