//! Binding trees: labeled spanning trees on the gender set with oriented
//! edges.
//!
//! An edge `(i, j)` means "run `GS(i, j)` with gender `i` proposing and
//! gender `j` responding" — Algorithm 1's binding primitive. The tree
//! shape determines both *which* stable k-ary matching is produced (§IV-B)
//! and the parallel round count (`Δ`, Corollary 1), so builders for all
//! topologies discussed in the paper are provided.

use crate::union_find::UnionFind;
use core::fmt;

/// Errors raised when validating a would-be binding tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// Fewer than two genders.
    TooSmall,
    /// An edge endpoint is out of `0..k`.
    BadEndpoint {
        /// The offending gender label.
        node: u16,
        /// Number of genders.
        k: usize,
    },
    /// An edge connects a gender to itself.
    SelfLoop {
        /// The offending gender label.
        node: u16,
    },
    /// Wrong edge count (a spanning tree on `k` nodes has exactly `k − 1`).
    WrongEdgeCount {
        /// Expected `k − 1`.
        expected: usize,
        /// Actual edge count.
        actual: usize,
    },
    /// The edges contain a cycle (equivalently, the graph is disconnected
    /// given the edge count is right).
    Cyclic,
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::TooSmall => write!(f, "a binding tree needs at least 2 genders"),
            TreeError::BadEndpoint { node, k } => {
                write!(f, "edge endpoint {node} out of range for k = {k}")
            }
            TreeError::SelfLoop { node } => write!(f, "self-loop at gender {node}"),
            TreeError::WrongEdgeCount { expected, actual } => {
                write!(f, "spanning tree needs {expected} edges, got {actual}")
            }
            TreeError::Cyclic => write!(f, "edges contain a cycle"),
        }
    }
}

impl std::error::Error for TreeError {}

/// A spanning tree over genders `0..k` with oriented edges
/// (proposer, responder).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BindingTree {
    k: usize,
    edges: Vec<(u16, u16)>,
}

impl BindingTree {
    /// Validate and build a tree from oriented edges.
    pub fn new(k: usize, edges: Vec<(u16, u16)>) -> Result<Self, TreeError> {
        if k < 2 {
            return Err(TreeError::TooSmall);
        }
        if edges.len() != k - 1 {
            return Err(TreeError::WrongEdgeCount {
                expected: k - 1,
                actual: edges.len(),
            });
        }
        let mut uf = UnionFind::new(k);
        for &(a, b) in &edges {
            for node in [a, b] {
                if node as usize >= k {
                    return Err(TreeError::BadEndpoint { node, k });
                }
            }
            if a == b {
                return Err(TreeError::SelfLoop { node: a });
            }
            if !uf.union(a as u32, b as u32) {
                return Err(TreeError::Cyclic);
            }
        }
        Ok(BindingTree { k, edges })
    }

    /// Path (linear chain) `0 − 1 − 2 − … − (k−1)`, each edge proposing
    /// left-to-right. Minimum possible `Δ = 2`: the topology behind the
    /// even–odd two-round schedule (Corollary 2, Fig. 4).
    ///
    /// ```
    /// use kmatch_graph::{even_odd_path_schedule, BindingTree};
    ///
    /// let tree = BindingTree::path(6);
    /// assert_eq!(tree.max_degree(), 2);
    /// assert_eq!(even_odd_path_schedule(&tree).unwrap().depth(), 2);
    /// ```
    pub fn path(k: usize) -> Self {
        assert!(k >= 2, "path tree needs k >= 2");
        let edges = (0..k - 1).map(|i| (i as u16, (i + 1) as u16)).collect();
        BindingTree { k, edges }
    }

    /// Star centered at `center`: the worst case `Δ = k − 1` for parallel
    /// binding (Corollary 1's bottleneck example). The center responds to
    /// every leaf.
    pub fn star(k: usize, center: u16) -> Self {
        assert!(k >= 2, "star tree needs k >= 2");
        assert!((center as usize) < k, "center out of range");
        let edges = (0..k as u16)
            .filter(|&v| v != center)
            .map(|v| (v, center))
            .collect();
        BindingTree { k, edges }
    }

    /// Balanced binary tree rooted at gender 0 (node `i` has children
    /// `2i+1`, `2i+2`), parents proposing to children. `Δ = 3` for interior
    /// nodes — an intermediate topology between path and star.
    pub fn balanced_binary(k: usize) -> Self {
        assert!(k >= 2, "balanced tree needs k >= 2");
        let edges = (1..k as u16).map(|v| (((v - 1) / 2), v)).collect();
        BindingTree { k, edges }
    }

    /// Number of genders.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Oriented edges (proposer, responder) in binding order.
    pub fn edges(&self) -> &[(u16, u16)] {
        &self.edges
    }

    /// Degree of every node.
    pub fn degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.k];
        for &(a, b) in &self.edges {
            deg[a as usize] += 1;
            deg[b as usize] += 1;
        }
        deg
    }

    /// Maximum node degree `Δ` — the parallel bottleneck of Corollary 1.
    pub fn max_degree(&self) -> usize {
        self.degrees().into_iter().max().unwrap_or(0)
    }

    /// Adjacency lists (undirected), sorted.
    pub fn adjacency(&self) -> Vec<Vec<u16>> {
        let mut adj = vec![Vec::new(); self.k];
        for &(a, b) in &self.edges {
            adj[a as usize].push(b);
            adj[b as usize].push(a);
        }
        for list in &mut adj {
            list.sort_unstable();
        }
        adj
    }

    /// The unique path between two genders (inclusive), found by DFS.
    pub fn path_between(&self, from: u16, to: u16) -> Vec<u16> {
        assert!(
            (from as usize) < self.k && (to as usize) < self.k,
            "nodes out of range"
        );
        let adj = self.adjacency();
        let mut parent = vec![u16::MAX; self.k];
        let mut stack = vec![from];
        let mut seen = vec![false; self.k];
        seen[from as usize] = true;
        while let Some(v) = stack.pop() {
            if v == to {
                break;
            }
            for &w in &adj[v as usize] {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    parent[w as usize] = v;
                    stack.push(w);
                }
            }
        }
        let mut path = vec![to];
        let mut cur = to;
        while cur != from {
            cur = parent[cur as usize];
            debug_assert_ne!(cur, u16::MAX, "tree is connected");
            path.push(cur);
        }
        path.reverse();
        path
    }

    /// Is this tree a path (every degree ≤ 2)?
    pub fn is_path(&self) -> bool {
        self.degrees().into_iter().all(|d| d <= 2)
    }

    /// Reverse the orientation of every edge (responders become proposers).
    /// Changes which stable matching Algorithm 1 produces (proposer-optimal
    /// per edge), not whether the result is stable.
    pub fn reversed(&self) -> BindingTree {
        BindingTree {
            k: self.k,
            edges: self.edges.iter().map(|&(a, b)| (b, a)).collect(),
        }
    }

    /// A canonical form ignoring edge order and orientation, for equality
    /// testing across construction methods.
    pub fn canonical_edges(&self) -> Vec<(u16, u16)> {
        let mut es: Vec<(u16, u16)> = self
            .edges
            .iter()
            .map(|&(a, b)| if a < b { (a, b) } else { (b, a) })
            .collect();
        es.sort_unstable();
        es
    }
}

impl fmt::Display for BindingTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BindingTree(k={}; ", self.k)?;
        for (idx, (a, b)) in self.edges.iter().enumerate() {
            if idx > 0 {
                write!(f, ", ")?;
            }
            write!(f, "G{a}→G{b}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_star_balanced_shapes() {
        let p = BindingTree::path(5);
        assert_eq!(p.max_degree(), 2);
        assert!(p.is_path());
        let s = BindingTree::star(5, 0);
        assert_eq!(s.max_degree(), 4);
        assert!(!s.is_path());
        let b = BindingTree::balanced_binary(7);
        assert_eq!(b.max_degree(), 3);
        assert_eq!(b.edges().len(), 6);
    }

    #[test]
    fn rejects_cycle_and_self_loop() {
        assert_eq!(
            BindingTree::new(3, vec![(0, 1), (1, 0)]).unwrap_err(),
            TreeError::Cyclic
        );
        assert_eq!(
            BindingTree::new(3, vec![(0, 0), (1, 2)]).unwrap_err(),
            TreeError::SelfLoop { node: 0 }
        );
        assert!(matches!(
            BindingTree::new(4, vec![(0, 1)]).unwrap_err(),
            TreeError::WrongEdgeCount {
                expected: 3,
                actual: 1
            }
        ));
        assert!(matches!(
            BindingTree::new(3, vec![(0, 1), (1, 7)]).unwrap_err(),
            TreeError::BadEndpoint { node: 7, k: 3 }
        ));
    }

    #[test]
    fn path_between_endpoints() {
        let p = BindingTree::path(6);
        assert_eq!(p.path_between(0, 5), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(p.path_between(4, 2), vec![4, 3, 2]);
        assert_eq!(p.path_between(3, 3), vec![3]);
        let s = BindingTree::star(5, 2);
        assert_eq!(s.path_between(0, 4), vec![0, 2, 4]);
    }

    #[test]
    fn reversed_swaps_orientation() {
        let t = BindingTree::path(4);
        let r = t.reversed();
        assert_eq!(r.edges(), &[(1, 0), (2, 1), (3, 2)]);
        assert_eq!(r.canonical_edges(), t.canonical_edges());
    }

    #[test]
    fn degrees_sum_to_twice_edges() {
        for t in [
            BindingTree::path(8),
            BindingTree::star(8, 3),
            BindingTree::balanced_binary(8),
        ] {
            assert_eq!(t.degrees().iter().sum::<usize>(), 2 * (t.k() - 1));
        }
    }
}
