//! Span-timeline instrumentation of the Irving engine: well-formed
//! streams, phase-1/phase-2 spans on both verdicts, and warm-resolve
//! instants with the right reason codes.

use kmatch_obs::{ManualClock, NoMetrics};
use kmatch_prefs::gen::paper::{section3b_left, section3b_right};
use kmatch_prefs::gen::uniform::uniform_roommates;
use kmatch_roommates::{solve, RoommatesRowDelta, RoommatesWorkspace};
use kmatch_trace::{check_well_formed, reason, span, EventKind, TraceRecorder};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn solvable_instance_emits_both_phases() {
    let inst = section3b_left();
    let clock = ManualClock::new();
    let mut rec = TraceRecorder::new(&clock);
    let mut ws = RoommatesWorkspace::new();
    let out = ws.solve_spanned(&inst, &mut NoMetrics, &mut rec);
    assert!(out.is_stable());
    let events = rec.events();
    check_well_formed(events, false).unwrap();
    for name in [span::IRVING_SOLVE, span::IRVING_PHASE1, span::IRVING_PHASE2] {
        assert!(
            events
                .iter()
                .any(|e| e.kind == EventKind::Begin && e.name == name),
            "missing {name} span"
        );
    }
    // irving.solve carries n and encloses everything.
    assert_eq!(events.first().map(|e| (e.name, e.arg)), Some((span::IRVING_SOLVE, 6)));
    assert_eq!(events.last().map(|e| e.name), Some(span::IRVING_SOLVE));
}

#[test]
fn phase1_failure_still_closes_spans() {
    // The paper's right-hand lists die in phase 1: no phase-2 span, but
    // the stream must still balance.
    let inst = section3b_right();
    let clock = ManualClock::new();
    let mut rec = TraceRecorder::new(&clock);
    let mut ws = RoommatesWorkspace::new();
    let out = ws.solve_spanned(&inst, &mut NoMetrics, &mut rec);
    assert!(!out.is_stable());
    let events = rec.events();
    check_well_formed(events, false).unwrap();
    assert!(events.iter().any(|e| e.name == span::IRVING_PHASE1));
    assert!(!events.iter().any(|e| e.name == span::IRVING_PHASE2));
}

#[test]
fn spanned_matches_plain_across_random_instances() {
    let mut rng = ChaCha8Rng::seed_from_u64(41);
    let clock = ManualClock::new();
    let mut ws = RoommatesWorkspace::new();
    for _ in 0..20 {
        for n in [6usize, 9, 12] {
            let inst = uniform_roommates(n, &mut rng);
            let mut rec = TraceRecorder::new(&clock);
            let spanned = ws.solve_spanned(&inst, &mut NoMetrics, &mut rec);
            let plain = solve(&inst);
            assert_eq!(spanned.matching(), plain.matching());
            assert_eq!(spanned.stats(), plain.stats());
            check_well_formed(rec.events(), false).unwrap();
        }
    }
}

#[test]
fn warm_resolve_spans_tag_replay_and_fallback() {
    let clock = ManualClock::new();
    let inst = section3b_left();
    let mut ws = RoommatesWorkspace::new();

    // No footer yet: fallback with NO_FOOTER, then a full cold timeline.
    let mut rec = TraceRecorder::new(&clock);
    ws.resolve_delta_spanned(&inst, &[], &mut NoMetrics, &mut rec);
    let events = rec.take();
    check_well_formed(&events, false).unwrap();
    assert_eq!(events[0].name, span::IRVING_WARM_FALLBACK);
    assert_eq!(events[0].arg, reason::NO_FOOTER);
    assert!(events.iter().any(|e| e.name == span::IRVING_PHASE1));

    // Finished execution + empty delta list: pure replay, no engine spans.
    let mut rec = TraceRecorder::new(&clock);
    ws.resolve_delta_spanned(&inst, &[], &mut NoMetrics, &mut rec);
    let events = rec.take();
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].name, span::IRVING_WARM_RESOLVE);

    // A live-prefix rewrite falls back with PREFIX_MISS.
    let mut edited = inst.clone();
    let old_row = edited.list(0).to_vec();
    let mut new_row = old_row.clone();
    new_row.reverse();
    edited.set_row(0, &new_row).unwrap();
    let delta = RoommatesRowDelta {
        participant: 0,
        old_row,
    };
    let mut rec = TraceRecorder::new(&clock);
    ws.resolve_delta_spanned(&edited, std::slice::from_ref(&delta), &mut NoMetrics, &mut rec);
    let events = rec.take();
    check_well_formed(&events, false).unwrap();
    assert_eq!(events[0].name, span::IRVING_WARM_FALLBACK);
    assert_eq!(events[0].arg, reason::PREFIX_MISS);
}
