//! Zero-steady-state-allocation guarantee for the workspace fast path.
//!
//! After a warm-up solve grows the workspace buffers, repeat solves of
//! same-shaped instances must not touch the allocator at all for
//! unsolvable instances, and must allocate exactly once per solve (the
//! partner array owned by the returned matching) for solvable ones.
//!
//! Measured with the shared [`kmatch_testsupport::CountingAlloc`]; the
//! counters are thread-local so the test harness's other threads cannot
//! pollute them.

use kmatch_prefs::gen::paper::no_stable_roommates_4;
use kmatch_prefs::gen::uniform::uniform_roommates;
use kmatch_prefs::RoommatesInstance;
use kmatch_roommates::RoommatesWorkspace;
use kmatch_testsupport::{allocations_in, CountingAlloc};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

#[test]
fn unsolvable_steady_state_allocates_nothing() {
    let inst = no_stable_roommates_4();
    let mut ws = RoommatesWorkspace::new();
    // Warm-up: grows every scratch buffer to this shape.
    assert!(!ws.solve(&inst).is_stable());
    let allocs = allocations_in(|| {
        for _ in 0..100 {
            assert!(!ws.solve(&inst).is_stable());
        }
    });
    assert_eq!(
        allocs, 0,
        "workspace-reuse solves of an unsolvable instance must not allocate"
    );
}

#[test]
fn solvable_steady_state_allocates_only_the_matching() {
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    // A solvable instance (retry until one is found — most even n are).
    let inst = loop {
        let cand = uniform_roommates(64, &mut rng);
        if RoommatesWorkspace::new().solve(&cand).is_stable() {
            break cand;
        }
    };
    let mut ws = RoommatesWorkspace::new();
    ws.solve(&inst);
    let reps = 50;
    let allocs = allocations_in(|| {
        for _ in 0..reps {
            let out = ws.solve(&inst);
            assert!(out.is_stable());
            std::hint::black_box(&out);
        }
    });
    assert!(
        allocs <= reps,
        "expected at most one allocation per solve (the returned partner \
         array), saw {allocs} over {reps} solves"
    );
}

#[test]
fn growing_then_shrinking_instances_reuse_buffers() {
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    let big = uniform_roommates(48, &mut rng);
    let small = uniform_roommates(8, &mut rng);
    let mut ws = RoommatesWorkspace::new();
    ws.solve(&big);
    // Smaller instances fit in the grown buffers: only the per-solve
    // matching may allocate.
    let reps = 40;
    let allocs = allocations_in(|| {
        for _ in 0..reps {
            std::hint::black_box(ws.solve(&small));
        }
    });
    assert!(allocs <= reps, "saw {allocs} allocations over {reps} solves");
}

#[test]
fn pre_sized_workspace_first_solve_is_quiet() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let inst = uniform_roommates(32, &mut rng);
    let mut ws = RoommatesWorkspace::with_capacity(32, inst.total_entries());
    let allocs = allocations_in(|| {
        std::hint::black_box(ws.solve(&inst));
    });
    assert!(
        allocs <= 1,
        "pre-sized workspace should only allocate the matching, saw {allocs}"
    );
}

#[test]
fn metered_unsolvable_steady_state_allocates_nothing() {
    // The metered path with a reused SolverMetrics must be as quiet as the
    // NoMetrics path: counters are plain u64 fields and the histograms are
    // fixed-size inline arrays, so observing a solve touches no heap.
    let inst = no_stable_roommates_4();
    let mut ws = RoommatesWorkspace::new();
    let mut metrics = kmatch_obs::SolverMetrics::new();
    ws.solve_metered(&inst, &mut metrics);
    let allocs = allocations_in(|| {
        for _ in 0..100 {
            assert!(!ws.solve_metered(&inst, &mut metrics).is_stable());
        }
    });
    assert_eq!(
        allocs, 0,
        "metered workspace-reuse solves of an unsolvable instance must not allocate"
    );
    assert_eq!(metrics.solves, 101);
}

#[test]
fn metered_solvable_steady_state_allocates_like_plain() {
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let inst = loop {
        let cand = uniform_roommates(48, &mut rng);
        if RoommatesWorkspace::new().solve(&cand).is_stable() {
            break cand;
        }
    };
    let mut ws = RoommatesWorkspace::new();
    ws.solve(&inst);
    let reps = 50u64;
    let plain = allocations_in(|| {
        for _ in 0..reps {
            std::hint::black_box(ws.solve(&inst));
        }
    });
    let mut metrics = kmatch_obs::SolverMetrics::new();
    let metered = allocations_in(|| {
        for _ in 0..reps {
            std::hint::black_box(ws.solve_metered(&inst, &mut metrics));
        }
    });
    assert_eq!(
        metered, plain,
        "SolverMetrics must add zero allocations over the NoMetrics path"
    );
    assert_eq!(metrics.solves, reps);
    assert_eq!(metrics.workspace_reused, reps);
}

#[test]
fn counting_allocator_is_live() {
    // Sanity: the harness actually observes allocations.
    let allocs = allocations_in(|| {
        std::hint::black_box(vec![1u8; 512]);
    });
    assert!(allocs >= 1);
}

#[test]
fn reused_outcomes_stay_correct_under_pressure() {
    // Belt and braces: buffer reuse must not trade correctness for speed.
    let mut rng = ChaCha8Rng::seed_from_u64(8);
    let mut ws = RoommatesWorkspace::new();
    for n in [16usize, 4, 32, 6, 32, 16] {
        let inst: RoommatesInstance = uniform_roommates(n, &mut rng);
        let fast = ws.solve(&inst);
        let reference = kmatch_roommates::solve_reference(&inst);
        assert_eq!(fast.matching(), reference.matching());
        assert_eq!(fast.stats(), reference.stats());
    }
}
