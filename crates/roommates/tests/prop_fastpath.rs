//! Differential property suite for the zero-allocation Irving fast path.
//!
//! The linked-list engine (untraced and traced, fresh-workspace and
//! reused-workspace) must be *behaviorally indistinguishable* from
//! `solve_reference` (the original `ActiveTable` implementation, kept
//! verbatim): identical stable matchings, identical no-stable-matching
//! certificates, identical proposal and rotation counts, on every
//! instance and under every rotation-seeding policy. All randomness is
//! seeded `rand_chacha` driven by the deterministic proptest case stream —
//! failures reproduce exactly.

use kmatch_gs::is_stable;
use kmatch_prefs::gen::uniform::{uniform_bipartite, uniform_roommates};
use kmatch_prefs::RoommatesInstance;
use kmatch_roommates::brute::stable_matching_exists_brute;
use kmatch_roommates::{
    fair_stable_marriage, is_roommates_stable, solve_reference, solve_traced,
    solve_with_logged_reference, solve_with_reference, RoommatesOutcome, RoommatesWorkspace,
    RotationPolicy,
};
use proptest::{prop_assert, prop_assert_eq, proptest, ProptestConfig};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Assert the two outcomes agree on existence, matching, certificate, and
/// both instrumentation counters.
fn assert_equivalent(fast: &RoommatesOutcome, reference: &RoommatesOutcome) -> Result<(), String> {
    if fast.stats() != reference.stats() {
        return Err(format!(
            "stats diverge: fast {:?} vs reference {:?}",
            fast.stats(),
            reference.stats()
        ));
    }
    match (fast, reference) {
        (
            RoommatesOutcome::Stable { matching: a, .. },
            RoommatesOutcome::Stable { matching: b, .. },
        ) if a == b => Ok(()),
        (
            RoommatesOutcome::NoStableMatching { culprit: a, .. },
            RoommatesOutcome::NoStableMatching { culprit: b, .. },
        ) if a == b => Ok(()),
        _ => Err(format!("outcomes diverge: {fast:?} vs {reference:?}")),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    fn fast_path_equals_reference(n in 2usize..40, seed in 0u64..1 << 32) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let inst = uniform_roommates(n, &mut rng);
        let reference = solve_reference(&inst);
        let fast = RoommatesWorkspace::new().solve(&inst);
        prop_assert!(assert_equivalent(&fast, &reference).is_ok(),
            "{}", assert_equivalent(&fast, &reference).unwrap_err());
        if let Some(m) = fast.matching() {
            prop_assert!(is_roommates_stable(&inst, m));
        }
    }

    fn sided_policies_equal_reference(n in 2usize..16, seed in 0u64..1 << 32) {
        // Policy seeding is what fair_smp builds on — the monotone seed
        // cursors must replicate SeedState::pick choice for choice.
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let smp = uniform_bipartite(n, &mut rng);
        let rm = RoommatesInstance::from_bipartite(&smp);
        let side: Vec<bool> = (0..2 * n).map(|p| p >= n).collect();
        let mut ws = RoommatesWorkspace::new();
        for policy in [
            RotationPolicy::AlternateSides { side: side.clone() },
            RotationPolicy::PreferSide { side: side.clone(), seed_from: false },
            RotationPolicy::PreferSide { side: side.clone(), seed_from: true },
        ] {
            let fast = ws.solve_with(&rm, &policy);
            let reference = solve_with_reference(&rm, policy);
            prop_assert!(assert_equivalent(&fast, &reference).is_ok(),
                "{}", assert_equivalent(&fast, &reference).unwrap_err());
        }
    }

    fn workspace_reuse_is_stateless(seed in 0u64..1 << 32) {
        // One workspace across a shrink/grow sequence of instances must
        // behave exactly like fresh solves.
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut ws = RoommatesWorkspace::new();
        for _ in 0..6 {
            let n = rng.gen_range(2..32);
            let inst = uniform_roommates(n, &mut rng);
            let reference = solve_reference(&inst);
            let fast = ws.solve(&inst);
            prop_assert!(assert_equivalent(&fast, &reference).is_ok(),
                "{}", assert_equivalent(&fast, &reference).unwrap_err());
        }
    }

    fn traced_engine_equals_reference_trace(n in 2usize..20, seed in 0u64..1 << 32) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let inst = uniform_roommates(n, &mut rng);
        let (fast, fast_events) = solve_traced(&inst);
        let mut ref_events = Vec::new();
        let reference = solve_with_logged_reference(
            &inst,
            RotationPolicy::FirstAvailable,
            &mut |e| ref_events.push(e),
        );
        prop_assert!(assert_equivalent(&fast, &reference).is_ok(),
            "{}", assert_equivalent(&fast, &reference).unwrap_err());
        prop_assert_eq!(fast_events, ref_events);
    }

    fn solver_agrees_with_brute_force(n in 2usize..=10, seed in 0u64..1 << 32) {
        // Existence must match exhaustive enumeration, and any returned
        // matching must be verifiably stable.
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let inst = uniform_roommates(n, &mut rng);
        let fast = RoommatesWorkspace::new().solve(&inst);
        prop_assert_eq!(fast.is_stable(), stable_matching_exists_brute(&inst));
        if let Some(m) = fast.matching() {
            prop_assert!(is_roommates_stable(&inst, m));
        }
    }

    fn fair_smp_outputs_are_stable_bipartite_matchings(n in 1usize..24, seed in 0u64..1 << 32) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let inst = uniform_bipartite(n, &mut rng);
        let out = fair_stable_marriage(&inst);
        prop_assert!(is_stable(&inst, &out.matching),
            "fair_stable_marriage produced an unstable matching at n = {}", n);
    }
}
