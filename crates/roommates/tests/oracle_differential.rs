//! Differential suite for the lazy §III-B roommates reduction: Irving on
//! a [`RoommatesOracleView`] over an implicit bipartite oracle must be
//! indistinguishable — matching, certificate, proposal and rotation
//! counts — from Irving on the fully materialized doubled instance.

use kmatch_prefs::{
    materialize_roommates, DualOracle, RandomPermOracle, RoommatesOracleView, ScoreOracle,
};
use kmatch_roommates::{solve_reference, RoommatesOutcome, RoommatesWorkspace};

fn assert_view_matches_materialized<O: DualOracle>(oracle: &O) {
    let view = RoommatesOracleView::new(oracle);
    let inst = materialize_roommates(oracle);
    let mut ws = RoommatesWorkspace::new();
    let via_view = ws.solve(&view);
    let via_inst = ws.solve(&inst);
    let reference = solve_reference(&inst);
    for (fast, slow) in [(&via_view, &via_inst), (&via_view, &reference)] {
        assert_eq!(fast.stats(), slow.stats(), "instrumentation diverged");
        match (fast, slow) {
            (
                RoommatesOutcome::Stable { matching: a, .. },
                RoommatesOutcome::Stable { matching: b, .. },
            ) => assert_eq!(a, b),
            (
                RoommatesOutcome::NoStableMatching { culprit: a, .. },
                RoommatesOutcome::NoStableMatching { culprit: b, .. },
            ) => assert_eq!(a, b),
            _ => panic!("oracle view and materialized reduction disagree on existence"),
        }
    }
}

#[test]
fn random_perm_view_agrees_with_materialized_reduction() {
    for n in [1usize, 2, 3, 5, 8, 16, 33, 64] {
        for seed in 0..6u64 {
            assert_view_matches_materialized(&RandomPermOracle::new(n, seed));
        }
    }
}

#[test]
fn score_view_agrees_with_materialized_reduction() {
    for n in [1usize, 2, 5, 16, 64] {
        for seed in 0..6u64 {
            assert_view_matches_materialized(&ScoreOracle::popularity(n, seed));
        }
    }
}

#[test]
fn view_solves_are_stable_marriages_of_the_underlying_instance() {
    // The §III-B reduction always has a stable matching (it is a marriage
    // instance in disguise), and every pair must be cross-side.
    for n in [4usize, 20, 50] {
        let oracle = RandomPermOracle::new(n, 7);
        let view = RoommatesOracleView::new(&oracle);
        let out = RoommatesWorkspace::new().solve(&view);
        let m = out
            .matching()
            .expect("marriage reductions always have a stable matching");
        for (a, b) in m.pairs() {
            let (lo, hi) = (a.min(b), a.max(b));
            assert!(
                (lo as usize) < n && (hi as usize) >= n,
                "pair ({a}, {b}) is not cross-side"
            );
        }
    }
}
