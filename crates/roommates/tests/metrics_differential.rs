//! Metrics-vs-trace differential suite for Irving's algorithm: the
//! `SolverMetrics` counters recorded by the metered fast path must agree
//! exactly with the event stream of the traced path on the same
//! instances — proposals with `Proposal`, holder swaps with displacing
//! proposals, phase-2 rotations with `Rotation`. All randomness is
//! seeded `rand_chacha` driven by the deterministic proptest case stream.

use kmatch_obs::SolverMetrics;
use kmatch_prefs::gen::uniform::uniform_roommates;
use kmatch_roommates::{solve_metered, solve_traced, RoommatesEvent};
use proptest::{prop_assert, prop_assert_eq, proptest, ProptestConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    fn metrics_equal_trace_event_counts(n in 2usize..32, seed in 0u64..1 << 32) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let inst = uniform_roommates(n, &mut rng);

        let mut m = SolverMetrics::new();
        let metered = solve_metered(&inst, &mut m);
        let (traced, events) = solve_traced(&inst);
        prop_assert_eq!(metered.matching(), traced.matching());
        prop_assert_eq!(metered.stats(), traced.stats());

        let proposals = events
            .iter()
            .filter(|e| matches!(e, RoommatesEvent::Proposal { .. }))
            .count() as u64;
        let displacing = events
            .iter()
            .filter(|e| matches!(e, RoommatesEvent::Proposal { displaced: Some(_), .. }))
            .count() as u64;
        let rotations = events
            .iter()
            .filter(|e| matches!(e, RoommatesEvent::Rotation { .. }))
            .count() as u64;
        let emptied = events
            .iter()
            .any(|e| matches!(e, RoommatesEvent::ListEmptied { .. }));

        prop_assert_eq!(m.proposals, proposals);
        prop_assert_eq!(m.holder_swaps, displacing);
        prop_assert_eq!(m.phase2_rotations, rotations);
        // One threshold store per held proposal — the metered definition
        // of a truncation — while the trace only logs non-empty removals,
        // so the traced Truncation count can only be lower.
        prop_assert_eq!(m.phase1_truncations, proposals);
        let traced_truncations = events
            .iter()
            .filter(|e| matches!(e, RoommatesEvent::Truncation { .. }))
            .count() as u64;
        prop_assert!(traced_truncations <= m.phase1_truncations);

        prop_assert_eq!(m.solves, 1);
        prop_assert_eq!(metered.is_stable(), !emptied);
        prop_assert_eq!(m.solvable, u64::from(metered.is_stable()));
        prop_assert_eq!(m.unsolvable, u64::from(!metered.is_stable()));
    }
}
