//! Procedurally fair stable marriage via the roommates reduction (§III-B).
//!
//! The GS algorithm structurally favors the proposing side. The paper's
//! remedy: encode the SMP as a roommates instance where "both men and women
//! can propose at the same time", then control phase 2 — "by alternating
//! man-oriented and woman-oriented loop breaking in phase two, we can
//! obtain a procedural fairness among men and women."
//!
//! Seeding a rotation from side X makes side X's members *fall back to
//! their second choices*, so man-seeded elimination produces woman-favoring
//! outcomes and vice versa; [`oriented_stable_marriage`] exposes both
//! extremes and [`fair_stable_marriage`] alternates.

use kmatch_gs::BipartiteMatching;
use kmatch_prefs::{BipartiteInstance, RoommatesInstance};

use crate::policy::RotationPolicy;
use crate::solver::{solve_with, RoommatesOutcome, SolveStats};

/// Which side's loops get broken in phase 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SmpOrientation {
    /// Break men's loops: men fall to their second choices —
    /// **woman-favoring** outcome.
    SeedFromMen,
    /// Break women's loops: **man-favoring** outcome.
    SeedFromWomen,
}

/// Result of a fair-SMP solve: the matching as proposer → responder pairs.
#[derive(Debug, Clone)]
pub struct FairSmpOutcome {
    /// Matching as proposer-side partner array.
    pub matching: BipartiteMatching,
    /// Roommates-solver counters.
    pub stats: SolveStats,
}

fn side_labels(n: usize) -> Vec<bool> {
    // Participants 0..n are men (false), n..2n women (true), matching the
    // `RoommatesInstance::from_bipartite` numbering.
    (0..2 * n).map(|p| p >= n).collect()
}

fn to_bipartite_matching(n: usize, outcome: RoommatesOutcome) -> FairSmpOutcome {
    match outcome {
        RoommatesOutcome::Stable { matching, stats } => {
            let partner: Vec<u32> = (0..n as u32)
                .map(|m| matching.partner(m) - n as u32)
                .collect();
            FairSmpOutcome {
                matching: BipartiteMatching::from_proposer_partners(partner),
                stats,
            }
        }
        RoommatesOutcome::NoStableMatching { culprit, .. } => {
            unreachable!(
                "SMP reductions always admit a stable matching (GS theorem); \
                 solver claimed participant {culprit} is unmatchable"
            )
        }
    }
}

/// Solve the SMP with one-sided loop breaking.
pub fn oriented_stable_marriage(
    inst: &BipartiteInstance,
    orientation: SmpOrientation,
) -> FairSmpOutcome {
    let n = inst.n();
    let rm = RoommatesInstance::from_bipartite(inst);
    let side = side_labels(n);
    let seed_from = matches!(orientation, SmpOrientation::SeedFromWomen);
    let outcome = solve_with(&rm, RotationPolicy::PreferSide { side, seed_from });
    to_bipartite_matching(n, outcome)
}

/// Solve the SMP with alternating man/woman loop breaking — the paper's
/// procedurally fair variant.
pub fn fair_stable_marriage(inst: &BipartiteInstance) -> FairSmpOutcome {
    let n = inst.n();
    let rm = RoommatesInstance::from_bipartite(inst);
    let outcome = solve_with(
        &rm,
        RotationPolicy::AlternateSides {
            side: side_labels(n),
        },
    );
    to_bipartite_matching(n, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmatch_prefs::gen::paper::fig2_deadlock_smp;
    use kmatch_prefs::gen::uniform::uniform_bipartite;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn deadlock_seeded_from_men_is_woman_optimal() {
        // Paper: "Both m and m' reject w and w', and they accept their
        // second choices, respectively, to form a woman-optimal stable
        // matching: (m, w') and (m', w)."
        let out = oriented_stable_marriage(&fig2_deadlock_smp(), SmpOrientation::SeedFromMen);
        assert_eq!(out.matching.partner_of_proposer(0), 1); // m  - w'
        assert_eq!(out.matching.partner_of_proposer(1), 0); // m' - w
    }

    #[test]
    fn deadlock_seeded_from_women_is_man_optimal() {
        // Paper: "If we remove the loop involving w and w', we have a
        // man-optimal stable matching, (m, w) and (m', w')."
        let out = oriented_stable_marriage(&fig2_deadlock_smp(), SmpOrientation::SeedFromWomen);
        assert_eq!(out.matching.partner_of_proposer(0), 0);
        assert_eq!(out.matching.partner_of_proposer(1), 1);
    }

    #[test]
    fn fair_solver_always_stable_on_random_smp() {
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        for n in [2usize, 5, 12, 24] {
            let inst = uniform_bipartite(n, &mut rng);
            let out = fair_stable_marriage(&inst);
            // Stability in bipartite terms: no (m, w) both preferring each
            // other over their partners.
            let partner_of_w = {
                let mut v = vec![0u32; n];
                for (m, w) in out.matching.pairs() {
                    v[w as usize] = m;
                }
                v
            };
            for m in 0..n as u32 {
                let wm = out.matching.partner_of_proposer(m);
                for w in 0..n as u32 {
                    if w == wm {
                        continue;
                    }
                    let both_prefer = inst.proposer_prefers(m, w, wm)
                        && inst.responder_prefers(w, m, partner_of_w[w as usize]);
                    assert!(!both_prefer, "blocking pair ({m}, {w}) at n = {n}");
                }
            }
        }
    }

    #[test]
    fn fairness_sits_between_extremes() {
        // Aggregate proposer rank under the fair solver should be no
        // better than man-oriented and no worse than woman-oriented
        // seeding (weak inequalities; they coincide when the instance has
        // a unique stable matching).
        let mut rng = ChaCha8Rng::seed_from_u64(18);
        let mut men_cost = (0.0, 0.0, 0.0); // (man-opt, fair, woman-opt)
        for _ in 0..20 {
            let inst = uniform_bipartite(16, &mut rng);
            let man_opt = oriented_stable_marriage(&inst, SmpOrientation::SeedFromWomen).matching;
            let woman_opt = oriented_stable_marriage(&inst, SmpOrientation::SeedFromMen).matching;
            let fair = fair_stable_marriage(&inst).matching;
            let cost = |m: &BipartiteMatching| -> f64 {
                (0..16u32)
                    .map(|p| inst.proposer_rank(p, m.partner_of_proposer(p)) as f64)
                    .sum()
            };
            men_cost.0 += cost(&man_opt);
            men_cost.1 += cost(&fair);
            men_cost.2 += cost(&woman_opt);
        }
        assert!(men_cost.0 <= men_cost.1 + 1e-9, "man-optimal best for men");
        assert!(
            men_cost.1 <= men_cost.2 + 1e-9,
            "fair no worse than woman-optimal for men"
        );
    }
}
