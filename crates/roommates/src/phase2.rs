//! Phase 2 of Irving's algorithm: rotation discovery and elimination.
//!
//! The paper (§III-B): "we try to find a loop of alternating first and
//! second preferences among reduced lists. Each participant involved in the
//! loop will reject his first preference and goes with his second
//! preference. The pruning process is applied again … The above process is
//! repeated until no such loop exists."
//!
//! Formally a *rotation* is a cyclic sequence of pairs
//! `(x_0, y_0), …, (x_{r−1}, y_{r−1})` with `y_i = first(x_i)` and
//! `y_{i+1} = second(x_i)` (indices mod `r`). Eliminating it makes every
//! `y_{i+1}` reject everything it ranks below `x_i` (bidirectionally), so
//! each `x_i` advances to its former second choice. Elimination preserves
//! the semi-engagement invariant; if it empties a list, no stable matching
//! exists.

use crate::active::ActiveTable;

/// A rotation: the cyclic `(x_i, y_i = first(x_i))` pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rotation {
    /// The `x_i` participants, in cycle order.
    pub xs: Vec<u32>,
    /// `ys[i] = first(xs[i])` at discovery time.
    pub ys: Vec<u32>,
}

/// Discover the rotation reachable from `start` (whose reduced list must
/// have length ≥ 2) by following `b_{i+1} = second(a_i)`,
/// `a_{i+1} = last(b_{i+1})` until a participant repeats.
pub fn find_rotation(table: &mut ActiveTable<'_>, start: u32) -> Rotation {
    debug_assert!(
        table.len(start) >= 2,
        "rotation seeds need a second preference"
    );
    let n = table.n();
    // position_in_seq[p] = index in `seq` where p first appeared, or MAX.
    let mut pos = vec![u32::MAX; n];
    let mut seq: Vec<u32> = Vec::new();
    let mut a = start;
    loop {
        if pos[a as usize] != u32::MAX {
            let cycle_start = pos[a as usize] as usize;
            let xs: Vec<u32> = seq[cycle_start..].to_vec();
            let ys: Vec<u32> = xs
                .iter()
                .map(|&x| table.first(x).expect("rotation member has a list"))
                .collect();
            return Rotation { xs, ys };
        }
        pos[a as usize] = seq.len() as u32;
        seq.push(a);
        let b = table
            .second(a)
            .expect("rotation path stays within length-2 lists");
        a = table
            .last(b)
            .expect("b holds a proposal, so its list is non-empty");
    }
}

/// Eliminate the rotation: each `y_{i+1} = second(x_i)` deletes everything
/// it ranks strictly below `x_i`. Returns the participant whose list
/// emptied, if any (no stable matching).
///
/// The certificate is the **first participant actually emptied by the
/// eliminating deletions**, in deletion order — not (as an earlier version
/// reported) the lowest-numbered empty participant found by an O(n)
/// post-hoc scan. Each receiver `y` keeps `x` on its list, so only the
/// removed partners can empty; checking them as they are deleted is the
/// bool-matrix analogue of the linked engine's O(1) delete-time signal,
/// and keeps both paths' certificates identical.
pub fn eliminate_rotation(table: &mut ActiveTable<'_>, rot: &Rotation) -> Option<u32> {
    let r = rot.xs.len();
    // Gather (receiver, new-last) pairs first: all second() lookups must
    // reflect discovery-time state, before any deletion of this round.
    let targets: Vec<(u32, u32)> = (0..r)
        .map(|i| {
            let x = rot.xs[i];
            let y_next = table.second(x).expect("rotation member still has a second");
            (y_next, x)
        })
        .collect();
    let mut culprit = None;
    for &(y, x) in &targets {
        for z in table.truncate_below(y, x) {
            if culprit.is_none() && table.is_empty(z) {
                culprit = Some(z);
            }
        }
        // An earlier truncation of this round may already have deleted
        // (y, x); then y's whole surviving list can be worse than x and y
        // itself empties (at its final deletion, after that delete's z).
        if culprit.is_none() && table.is_empty(y) {
            culprit = Some(y);
        }
    }
    culprit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase1::{phase1, Phase1Result};
    use kmatch_prefs::gen::paper::fig2_deadlock_smp;
    use kmatch_prefs::RoommatesInstance;

    fn reduced_deadlock(inst: &RoommatesInstance) -> ActiveTable<'_> {
        let mut table = ActiveTable::new(inst);
        let mut proposals = 0;
        assert!(matches!(
            phase1(&mut table, &mut proposals),
            Phase1Result::Reduced { .. }
        ));
        table
    }

    #[test]
    fn deadlock_rotation_from_men_side() {
        // Seeding from m (participant 0) finds the rotation through m, m'
        // whose elimination yields the woman-optimal matching (paper:
        // "Both m and m' reject w and w', and they accept their second
        // choices").
        let inst = RoommatesInstance::from_bipartite(&fig2_deadlock_smp());
        let mut table = reduced_deadlock(&inst);
        let rot = find_rotation(&mut table, 0);
        assert_eq!(rot.xs, vec![0, 1], "rotation visits m then m'");
        assert_eq!(rot.ys, vec![2, 3], "their first choices are w, w'");
        assert_eq!(eliminate_rotation(&mut table, &rot), None);
        assert_eq!(table.reduced_list(0), vec![3]); // m  -> w'
        assert_eq!(table.reduced_list(1), vec![2]); // m' -> w
        assert_eq!(table.reduced_list(2), vec![1]); // w  -> m'
        assert_eq!(table.reduced_list(3), vec![0]); // w' -> m
    }

    #[test]
    fn deadlock_rotation_from_women_side() {
        // Seeding from w (participant 2) eliminates the women's loop,
        // producing the man-optimal matching (m,w), (m',w').
        let inst = RoommatesInstance::from_bipartite(&fig2_deadlock_smp());
        let mut table = reduced_deadlock(&inst);
        let rot = find_rotation(&mut table, 2);
        assert_eq!(rot.xs, vec![2, 3]);
        assert_eq!(eliminate_rotation(&mut table, &rot), None);
        assert_eq!(table.reduced_list(0), vec![2]); // m  -> w
        assert_eq!(table.reduced_list(1), vec![3]); // m' -> w'
    }

    #[test]
    fn culprit_certificate_is_genuinely_empty() {
        // The no-stable-matching certificate must name a participant whose
        // reduced list is actually empty (the paper's "u's reduced list is
        // empty"), not merely the lowest-numbered participant.
        use crate::policy::{RotationPolicy, SeedState};
        use kmatch_prefs::gen::uniform::uniform_roommates;
        use rand::SeedableRng;
        use rand_chacha::ChaCha8Rng;

        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let mut checked = 0;
        for _ in 0..500 {
            if checked >= 10 {
                break;
            }
            let inst = uniform_roommates(8, &mut rng);
            let mut table = ActiveTable::new(&inst);
            let mut proposals = 0;
            if !matches!(
                phase1(&mut table, &mut proposals),
                Phase1Result::Reduced { .. }
            ) {
                continue;
            }
            loop {
                let mut seeds = SeedState::new(RotationPolicy::FirstAvailable);
                let candidates: Vec<u32> = (0..inst.n() as u32)
                    .filter(|&p| table.len(p) >= 2)
                    .collect();
                let Some(start) = seeds.pick(&candidates) else {
                    break; // solvable — all lists singletons
                };
                let rot = find_rotation(&mut table, start);
                if let Some(culprit) = eliminate_rotation(&mut table, &rot) {
                    assert!(
                        table.is_empty(culprit),
                        "certificate names a participant with a non-empty list"
                    );
                    checked += 1;
                    break;
                }
            }
        }
        assert!(checked >= 10, "too few phase-2 unsolvable instances seen");
    }

    #[test]
    fn rotation_preserves_semi_engagement() {
        let inst = RoommatesInstance::from_bipartite(&fig2_deadlock_smp());
        let mut table = reduced_deadlock(&inst);
        let rot = find_rotation(&mut table, 0);
        eliminate_rotation(&mut table, &rot);
        // Invariant: first(x) = y iff last(y) = x.
        for x in 0..4u32 {
            let y = table.first(x).unwrap();
            assert_eq!(table.last(y), Some(x));
        }
    }
}
