//! Event traces of Irving's algorithm, mirroring the paper's §III-B
//! notation ("`w → m  m holds  w removes m: w′u`").

/// One event of a traced roommates run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoommatesEvent {
    /// `from` proposes to `to`; `displaced` is the proposer whose held
    /// proposal `to` traded away (resuming its own proposals), if any.
    Proposal {
        /// The proposing participant.
        from: u32,
        /// The recipient now holding the proposal.
        to: u32,
        /// The previously-held proposer, now free again.
        displaced: Option<u32>,
    },
    /// Holding the proposal pruned `holder`'s list below `kept`: every
    /// participant in `removed` was deleted bidirectionally.
    Truncation {
        /// The participant whose list was pruned.
        holder: u32,
        /// The new bottom of the list (the held proposer).
        kept: u32,
        /// The removed partners, best-to-worst.
        removed: Vec<u32>,
    },
    /// Phase 2 found a rotation (the paper's "loop of alternating first
    /// and second preferences").
    Rotation {
        /// The `x_i` participants, in cycle order.
        xs: Vec<u32>,
        /// Their first preferences `y_i = first(x_i)` at discovery.
        ys: Vec<u32>,
    },
    /// A reduced list emptied: no stable matching exists.
    ListEmptied {
        /// The participant with the empty list.
        who: u32,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_compare() {
        let a = RoommatesEvent::Proposal {
            from: 0,
            to: 1,
            displaced: None,
        };
        let b = RoommatesEvent::Proposal {
            from: 0,
            to: 1,
            displaced: Some(2),
        };
        assert_ne!(a, b);
    }
}
