//! # kmatch-roommates — Irving's stable-roommates algorithm
//!
//! §III-B of the paper detects (and finds) stable **binary** matchings in
//! k-partite graphs by solving a stable-roommates problem "with incomplete
//! preference lists … and with some minor twists". This crate is a complete
//! implementation of Irving's two-phase algorithm [Irving 1985]:
//!
//! * **Phase 1** ([`phase1`]): everyone proposes down their list; a
//!   recipient holds the best proposal seen so far; every hold prunes the
//!   recipient's list below the held proposer, with the paper's
//!   *bidirectional removal rule* ("if w removes m from her list, it also
//!   means m removes w from his list"). An emptied list proves no stable
//!   matching exists.
//! * **Phase 2** ([`phase2`]): repeatedly find a *rotation* — the paper's
//!   "loop of alternating first and second preferences among reduced
//!   lists" — and eliminate it, until every reduced list is a singleton
//!   (stable matching read off directly) or a list empties (no stable
//!   matching).
//!
//! The starting point of rotation discovery is a policy
//! ([`policy::RotationPolicy`]); alternating it between the two sides of a
//! bipartite reduction implements the paper's *procedurally fair* stable
//! marriage (§III-B end, Fig. 2), provided by [`fair_smp`].
//!
//! Two implementations of the full algorithm live side by side: the
//! zero-allocation fast path ([`solve`], [`RoommatesWorkspace::solve`])
//! built on [`engine`]/[`workspace`] — implicit phase-1 deletion
//! thresholds plus a compact doubly-linked arena for phase 2 — and the
//! reference solver ([`solve_reference`]) over the [`active`] mask table,
//! kept verbatim as the differential-testing oracle.
//!
//! [`brute`] supplies exhaustive ground truth (all stable matchings of
//! small instances) used heavily by the Theorem-1 experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod active;
pub mod brute;
pub mod engine;
pub mod fair_smp;
pub mod kpartite;
pub mod matching;
pub mod phase1;
pub mod phase2;
pub mod policy;
pub mod solver;
pub mod trace;
pub mod warm;
pub mod workspace;

pub use fair_smp::{fair_stable_marriage, oriented_stable_marriage, SmpOrientation};
pub use kpartite::{solve_kpartite_binary, KPartiteBinaryOutcome};
pub use matching::{find_roommates_blocking_pair, is_roommates_stable, RoommatesMatching};
pub use policy::RotationPolicy;
pub use solver::{
    solve, solve_metered, solve_reference, solve_traced, solve_with, solve_with_logged,
    solve_with_logged_reference, solve_with_reference, RoommatesOutcome, SolveStats,
};
pub use trace::RoommatesEvent;
pub use warm::RoommatesRowDelta;
pub use workspace::RoommatesWorkspace;
