//! The mutable "reduced list" table driving both phases of Irving's
//! algorithm.
//!
//! Wraps a [`RoommatesInstance`] with an activity mask over its preference
//! entries. All deletions are **bidirectional** (the paper's removal rule):
//! deactivating `(p, q)` deactivates `(q, p)`. First/last lookups are
//! amortized O(1) via monotone head/tail hints — entries are only ever
//! deleted, never restored, so the hints advance monotonically.

use kmatch_prefs::RoommatesInstance;

/// Reduced preference lists: the instance plus an activity mask.
#[derive(Debug, Clone)]
pub struct ActiveTable<'a> {
    inst: &'a RoommatesInstance,
    n: usize,
    /// `active[p * n + q]`.
    active: Vec<bool>,
    /// Remaining active entries per participant.
    len: Vec<u32>,
    /// First possibly-active position in `p`'s list (monotone hint).
    head: Vec<u32>,
    /// Last possibly-active position + 1 in `p`'s list (monotone hint).
    tail: Vec<u32>,
}

impl<'a> ActiveTable<'a> {
    /// Start with every listed pair active.
    pub fn new(inst: &'a RoommatesInstance) -> Self {
        let n = inst.n();
        let mut active = vec![false; n * n];
        let mut len = vec![0u32; n];
        for p in 0..n as u32 {
            for &q in inst.list(p) {
                active[p as usize * n + q as usize] = true;
            }
            len[p as usize] = inst.list(p).len() as u32;
        }
        let tail = (0..n).map(|p| inst.list(p as u32).len() as u32).collect();
        ActiveTable {
            inst,
            n,
            active,
            len,
            head: vec![0; n],
            tail,
        }
    }

    /// The underlying instance.
    pub fn instance(&self) -> &RoommatesInstance {
        self.inst
    }

    /// Number of participants.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Is the pair `(p, q)` still active?
    #[inline]
    pub fn is_active(&self, p: u32, q: u32) -> bool {
        self.active[p as usize * self.n + q as usize]
    }

    /// Remaining list length of `p`.
    #[inline]
    pub fn len(&self, p: u32) -> u32 {
        self.len[p as usize]
    }

    /// True when `p`'s reduced list is empty (the no-stable-matching
    /// signal).
    #[inline]
    pub fn is_empty(&self, p: u32) -> bool {
        self.len[p as usize] == 0
    }

    /// Bidirectionally delete the pair `(p, q)`. No-op if already deleted.
    pub fn delete(&mut self, p: u32, q: u32) {
        if !self.is_active(p, q) {
            return;
        }
        self.active[p as usize * self.n + q as usize] = false;
        self.active[q as usize * self.n + p as usize] = false;
        self.len[p as usize] -= 1;
        self.len[q as usize] -= 1;
    }

    /// First (most preferred) active entry of `p`'s list.
    pub fn first(&mut self, p: u32) -> Option<u32> {
        let list = self.inst.list(p);
        let mut h = self.head[p as usize] as usize;
        while h < list.len() && !self.is_active(p, list[h]) {
            h += 1;
        }
        self.head[p as usize] = h as u32;
        list.get(h).copied()
    }

    /// Second active entry of `p`'s list: one forward pass that advances
    /// the head hint to the first active entry and keeps scanning from
    /// there (rather than re-running [`ActiveTable::first`] and then
    /// rescanning from the hint a second time).
    pub fn second(&mut self, p: u32) -> Option<u32> {
        let list = self.inst.list(p);
        let mut h = self.head[p as usize] as usize;
        while h < list.len() && !self.is_active(p, list[h]) {
            h += 1;
        }
        self.head[p as usize] = h as u32;
        if h >= list.len() {
            return None;
        }
        list[h + 1..]
            .iter()
            .copied()
            .find(|&q| self.is_active(p, q))
    }

    /// Last (least preferred) active entry of `p`'s list.
    pub fn last(&mut self, p: u32) -> Option<u32> {
        let list = self.inst.list(p);
        let mut t = self.tail[p as usize] as usize;
        while t > 0 && !self.is_active(p, list[t - 1]) {
            t -= 1;
        }
        self.tail[p as usize] = t as u32;
        if t == 0 {
            None
        } else {
            Some(list[t - 1])
        }
    }

    /// Delete every active entry of `p`'s list strictly worse than `q`
    /// (bidirectionally), returning the removed partners in list order.
    /// `q` must be on `p`'s original list.
    ///
    /// This is the paper's pruning step: "if m receives a proposal from w,
    /// he will remove all persons, u, ranked lower than w. In addition, m
    /// will be removed from u's preference list".
    pub fn truncate_below(&mut self, p: u32, q: u32) -> Vec<u32> {
        let threshold = self.inst.rank_of(p, q);
        debug_assert_ne!(threshold, kmatch_prefs::UNRANKED, "q must be on p's list");
        let list = self.inst.list(p);
        // Collect to satisfy the borrow checker; lists are short-lived
        // slices into the instance.
        let doomed: Vec<u32> = list
            .iter()
            .copied()
            .filter(|&z| self.inst.rank_of(p, z) > threshold && self.is_active(p, z))
            .collect();
        for &z in &doomed {
            self.delete(p, z);
        }
        doomed
    }

    /// Current reduced list of `p`, in preference order (test/debug).
    pub fn reduced_list(&self, p: u32) -> Vec<u32> {
        self.inst
            .list(p)
            .iter()
            .copied()
            .filter(|&q| self.is_active(p, q))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmatch_prefs::gen::paper::section3b_left;

    #[test]
    fn first_second_last_track_deletions() {
        let inst = section3b_left();
        let mut t = ActiveTable::new(&inst);
        // m: u' w w' u = [5, 2, 3, 4]
        assert_eq!(t.first(0), Some(5));
        assert_eq!(t.second(0), Some(2));
        assert_eq!(t.last(0), Some(4));
        t.delete(0, 5);
        assert_eq!(t.first(0), Some(2));
        assert_eq!(t.second(0), Some(3));
        t.delete(0, 4);
        assert_eq!(t.last(0), Some(3));
        assert_eq!(t.len(0), 2);
        // Bidirectional: 5 (u') lost m from its list [0, 2, 3, 1].
        assert_eq!(t.first(5), Some(2));
    }

    #[test]
    fn truncate_below_prunes_tail() {
        let inst = section3b_left();
        let mut t = ActiveTable::new(&inst);
        // m holds a proposal from w (=2): remove everyone worse than w on
        // m's list [5, 2, 3, 4] -> [5, 2].
        t.truncate_below(0, 2);
        assert_eq!(t.reduced_list(0), vec![5, 2]);
        // Bidirectional: w' (=3) and u (=4) lost m.
        assert!(!t.is_active(3, 0));
        assert!(!t.is_active(4, 0));
        assert_eq!(t.len(0), 2);
    }

    #[test]
    fn emptying_a_list() {
        let inst = section3b_left();
        let mut t = ActiveTable::new(&inst);
        for q in [5, 2, 3, 4] {
            t.delete(0, q);
        }
        assert!(t.is_empty(0));
        assert_eq!(t.first(0), None);
        assert_eq!(t.last(0), None);
        assert_eq!(t.second(0), None);
    }

    #[test]
    fn second_agrees_with_reduced_list_under_interleaved_deletions() {
        // Regression for the old double-scan implementation: `second` must
        // track `reduced_list()[1]` exactly while deletions interleave
        // with lookups (which move the head hint around).
        let inst = section3b_left();
        let mut t = ActiveTable::new(&inst);
        let deletions = [(0, 5), (2, 0), (3, 1), (0, 3), (4, 2), (5, 2)];
        for (i, &(p, q)) in deletions.iter().enumerate() {
            for probe in 0..inst.n() as u32 {
                // Interleave first/last lookups so the hints advance.
                if i % 2 == 0 {
                    t.first(probe);
                } else {
                    t.last(probe);
                }
                assert_eq!(
                    t.second(probe),
                    t.reduced_list(probe).get(1).copied(),
                    "participant {probe} after {i} deletions"
                );
            }
            t.delete(p, q);
        }
        for probe in 0..inst.n() as u32 {
            assert_eq!(t.second(probe), t.reduced_list(probe).get(1).copied());
        }
    }

    #[test]
    fn delete_is_idempotent() {
        let inst = section3b_left();
        let mut t = ActiveTable::new(&inst);
        t.delete(0, 5);
        t.delete(0, 5);
        t.delete(5, 0);
        assert_eq!(t.len(0), 3);
        assert_eq!(t.len(5), 3);
    }
}
