//! Stable **binary** matching in k-partite graphs via roommates (§III).
//!
//! Theorem 1 says stable binary matchings need not exist when `k > 2`; this
//! adapter runs Irving's algorithm on the roommates reduction to *decide*
//! existence and produce a matching when one exists — the paper's §III-B
//! procedure. Pairs may join any two distinct genders.

use kmatch_prefs::{KPartiteInstance, Member, MergeStrategy, RoommatesInstance};

use crate::matching::RoommatesMatching;
use crate::solver::{solve, RoommatesOutcome, SolveStats};

/// Result of the k-partite binary matching search.
#[derive(Debug, Clone)]
pub enum KPartiteBinaryOutcome {
    /// A stable binary matching: cross-gender pairs covering every member.
    Stable {
        /// The pairs, as members of the original k-partite instance.
        pairs: Vec<(Member, Member)>,
        /// Roommates-solver counters.
        stats: SolveStats,
    },
    /// No stable binary matching exists under the chosen linear extension
    /// of the per-gender preference orders.
    NoStableMatching {
        /// The member whose reduced list emptied.
        culprit: Member,
        /// Roommates-solver counters.
        stats: SolveStats,
    },
}

impl KPartiteBinaryOutcome {
    /// True when a stable binary matching was found.
    pub fn is_stable(&self) -> bool {
        matches!(self, KPartiteBinaryOutcome::Stable { .. })
    }
}

/// Convert a roommates matching on the `g·n + i` numbering back to member
/// pairs.
pub fn matching_to_pairs(matching: &RoommatesMatching, n: u32) -> Vec<(Member, Member)> {
    matching
        .pairs()
        .into_iter()
        .map(|(p, q)| (Member::from_global(p, n), Member::from_global(q, n)))
        .collect()
}

/// Decide stable binary matching in a balanced k-partite instance, merging
/// each member's per-gender orders into a global order with `strategy`.
pub fn solve_kpartite_binary(
    inst: &KPartiteInstance,
    strategy: MergeStrategy,
) -> KPartiteBinaryOutcome {
    let rm = RoommatesInstance::from_kpartite(inst, strategy);
    let n = inst.n() as u32;
    match solve(&rm) {
        RoommatesOutcome::Stable { matching, stats } => KPartiteBinaryOutcome::Stable {
            pairs: matching_to_pairs(&matching, n),
            stats,
        },
        RoommatesOutcome::NoStableMatching { culprit, stats } => {
            KPartiteBinaryOutcome::NoStableMatching {
                culprit: Member::from_global(culprit, n),
                stats,
            }
        }
    }
}

/// Decide stable binary matching for an instance that already carries
/// global total orders (e.g. the Theorem-1 construction).
pub fn solve_global_binary(rm: &RoommatesInstance, n: u32) -> KPartiteBinaryOutcome {
    match solve(rm) {
        RoommatesOutcome::Stable { matching, stats } => KPartiteBinaryOutcome::Stable {
            pairs: matching_to_pairs(&matching, n),
            stats,
        },
        RoommatesOutcome::NoStableMatching { culprit, stats } => {
            KPartiteBinaryOutcome::NoStableMatching {
                culprit: Member::from_global(culprit, n),
                stats,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmatch_prefs::gen::adversarial::theorem1_roommates;
    use kmatch_prefs::gen::paper::fig3_tripartite;
    use kmatch_prefs::GenderId;

    #[test]
    fn theorem1_instances_rejected_at_scale() {
        // Theorem 1 holds for every k > 2, and Irving's algorithm scales
        // far past brute force.
        for (k, n) in [(3usize, 2u32), (3, 8), (4, 4), (5, 6), (6, 10)] {
            let rm = theorem1_roommates(k, n as usize);
            let out = solve_global_binary(&rm, n);
            assert!(
                !out.is_stable(),
                "Theorem-1 instance k={k}, n={n} must have no stable binary matching"
            );
        }
    }

    #[test]
    fn fig3_binary_matching_agrees_with_brute_force() {
        // Under the round-robin linear extension, even the benign Fig. 3
        // preferences admit no stable *binary* matching (u and u' must take
        // one M and one W member, and the leftover M—W pair always blocks)
        // — an instance of Theorem 1's message. The solver must agree with
        // exhaustive search.
        let inst = fig3_tripartite();
        let rm =
            kmatch_prefs::RoommatesInstance::from_kpartite(&inst, MergeStrategy::RoundRobinByRank);
        let brute = crate::brute::stable_matching_exists_brute(&rm);
        let out = solve_kpartite_binary(&inst, MergeStrategy::RoundRobinByRank);
        assert_eq!(out.is_stable(), brute, "solver must agree with brute force");
        assert!(
            !brute,
            "hand analysis: every cross-gender matching is blocked"
        );
        // The other linear extension must agree with its own brute force.
        let rm2 =
            kmatch_prefs::RoommatesInstance::from_kpartite(&inst, MergeStrategy::ConcatByGender);
        let out2 = solve_kpartite_binary(&inst, MergeStrategy::ConcatByGender);
        assert_eq!(
            out2.is_stable(),
            crate::brute::stable_matching_exists_brute(&rm2)
        );
    }

    #[test]
    fn stable_outcome_pairs_are_cross_gender() {
        // A k-partite instance whose reduction *is* solvable: 2 genders
        // (binary matching in a bipartite graph always works).
        let inst = kmatch_prefs::gen::uniform::uniform_kpartite(
            2,
            4,
            &mut <rand_chacha::ChaCha8Rng as rand::SeedableRng>::seed_from_u64(19),
        );
        match solve_kpartite_binary(&inst, MergeStrategy::RoundRobinByRank) {
            KPartiteBinaryOutcome::Stable { pairs, .. } => {
                assert_eq!(pairs.len(), 4);
                for (a, b) in &pairs {
                    assert_ne!(a.gender, b.gender, "pairs must be cross-gender");
                }
            }
            KPartiteBinaryOutcome::NoStableMatching { .. } => {
                panic!("bipartite binary matching always has a stable solution")
            }
        }
    }

    #[test]
    fn culprit_is_the_despised_node() {
        // In the Theorem-1 construction the globally-despised node (0,0)
        // is the natural casualty; verify the culprit is a valid member.
        let rm = theorem1_roommates(3, 2);
        let out = solve_global_binary(&rm, 2);
        match out {
            KPartiteBinaryOutcome::NoStableMatching { culprit, .. } => {
                assert!(culprit.gender <= GenderId(2));
            }
            KPartiteBinaryOutcome::Stable { .. } => panic!("must be unsolvable"),
        }
    }
}
