//! The complete Irving solver: phase 1 + repeated rotation elimination.
//!
//! Two implementations live side by side:
//!
//! * The **fast path** ([`solve`], [`solve_with`]) runs the two-tier
//!   engine in [`crate::engine`] (implicit phase-1 thresholds + compact
//!   linked arena for phase 2) through a transient
//!   [`crate::workspace::RoommatesWorkspace`]. Callers doing many solves
//!   should hold a workspace and call
//!   [`RoommatesWorkspace::solve`](crate::workspace::RoommatesWorkspace::solve)
//!   directly to amortize the scratch allocations away entirely.
//! * The **reference** ([`solve_reference`], [`solve_with_reference`])
//!   keeps the original [`ActiveTable`] implementation verbatim as the
//!   differential-testing oracle: both paths must produce identical
//!   matchings, certificates, proposal counts, and rotation counts
//!   (pinned by `tests/prop_fastpath.rs`).

use kmatch_prefs::{RoommatesInstance, RoommatesPrefs};

use crate::active::ActiveTable;
use crate::engine::{run_core, LogTrace};
use crate::matching::RoommatesMatching;
use crate::phase1::{phase1_logged, Phase1Result};
use crate::phase2::{eliminate_rotation, find_rotation};
use crate::policy::{RotationPolicy, SeedState};
use crate::trace::RoommatesEvent;
use crate::workspace::RoommatesWorkspace;

/// Instrumentation from a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SolveStats {
    /// Phase-1 proposals.
    pub proposals: u64,
    /// Rotations eliminated in phase 2.
    pub rotations: u32,
}

/// Result of running Irving's algorithm.
#[derive(Debug, Clone)]
pub enum RoommatesOutcome {
    /// A stable matching, with instrumentation.
    Stable {
        /// The stable matching found.
        matching: RoommatesMatching,
        /// Proposal/rotation counters.
        stats: SolveStats,
    },
    /// No stable matching exists; `culprit`'s reduced list emptied.
    NoStableMatching {
        /// A participant whose list emptied — the paper's certificate
        /// ("u's reduced list is empty. Therefore, there is no stable
        /// matching").
        culprit: u32,
        /// Proposal/rotation counters.
        stats: SolveStats,
    },
}

impl RoommatesOutcome {
    /// The matching, if stable.
    pub fn matching(&self) -> Option<&RoommatesMatching> {
        match self {
            RoommatesOutcome::Stable { matching, .. } => Some(matching),
            RoommatesOutcome::NoStableMatching { .. } => None,
        }
    }

    /// Instrumentation counters.
    pub fn stats(&self) -> SolveStats {
        match self {
            RoommatesOutcome::Stable { stats, .. }
            | RoommatesOutcome::NoStableMatching { stats, .. } => *stats,
        }
    }

    /// True when a stable matching was found.
    pub fn is_stable(&self) -> bool {
        matches!(self, RoommatesOutcome::Stable { .. })
    }
}

/// Solve with the default deterministic seeding
/// ([`RotationPolicy::FirstAvailable`]).
///
/// ```
/// use kmatch_roommates::solve;
/// use kmatch_prefs::gen::paper::{section3b_left, section3b_right};
///
/// // The paper's left-hand lists have the stable matching
/// // (m,u'), (m',w), (w',u); the right-hand lists have none.
/// assert!(solve(&section3b_left()).is_stable());
/// assert!(!solve(&section3b_right()).is_stable());
/// ```
pub fn solve<R: RoommatesPrefs>(inst: &R) -> RoommatesOutcome {
    solve_with(inst, RotationPolicy::FirstAvailable)
}

/// Solve with an explicit rotation-seeding policy (see
/// [`crate::fair_smp`] for why the seed matters).
pub fn solve_with<R: RoommatesPrefs>(inst: &R, policy: RotationPolicy) -> RoommatesOutcome {
    RoommatesWorkspace::new().solve_with(inst, &policy)
}

/// [`solve`] with metric hooks — the transient-workspace face of
/// [`RoommatesWorkspace::solve_metered`].
pub fn solve_metered<R: RoommatesPrefs, M: kmatch_obs::Metrics>(
    inst: &R,
    metrics: &mut M,
) -> RoommatesOutcome {
    RoommatesWorkspace::new().solve_metered(inst, metrics)
}

/// Solve with [`RotationPolicy::FirstAvailable`], also returning the full
/// event trace in the paper's §III-B style.
pub fn solve_traced<R: RoommatesPrefs>(inst: &R) -> (RoommatesOutcome, Vec<RoommatesEvent>) {
    let mut events = Vec::new();
    let out = solve_with_logged(inst, RotationPolicy::FirstAvailable, &mut |e| {
        events.push(e)
    });
    (out, events)
}

/// [`solve_with`] plus an event callback, running the traced instantiation
/// of the linked-list engine (event-for-event identical to
/// [`solve_with_logged_reference`]).
pub fn solve_with_logged<R: RoommatesPrefs>(
    inst: &R,
    policy: RotationPolicy,
    log: &mut dyn FnMut(RoommatesEvent),
) -> RoommatesOutcome {
    let mut ws = RoommatesWorkspace::new();
    run_core(
        inst,
        &mut ws,
        &policy,
        &mut LogTrace { log },
        &mut kmatch_obs::NoMetrics,
        &mut kmatch_trace::NoSpans,
    )
}

/// Reference solver with the default seeding — the original
/// [`ActiveTable`] implementation, kept as the oracle for differential
/// tests and benchmarks.
pub fn solve_reference(inst: &RoommatesInstance) -> RoommatesOutcome {
    solve_with_reference(inst, RotationPolicy::FirstAvailable)
}

/// Reference solver with an explicit rotation-seeding policy.
pub fn solve_with_reference(inst: &RoommatesInstance, policy: RotationPolicy) -> RoommatesOutcome {
    solve_with_logged_reference(inst, policy, &mut |_| {})
}

/// [`solve_with_reference`] plus an event callback.
pub fn solve_with_logged_reference(
    inst: &RoommatesInstance,
    policy: RotationPolicy,
    log: &mut dyn FnMut(RoommatesEvent),
) -> RoommatesOutcome {
    let mut stats = SolveStats::default();
    let mut table = ActiveTable::new(inst);

    match phase1_logged(&mut table, &mut stats.proposals, log) {
        Phase1Result::NoStableMatching { culprit } => {
            return RoommatesOutcome::NoStableMatching { culprit, stats }
        }
        Phase1Result::Reduced { .. } => {}
    }

    let n = inst.n() as u32;
    let mut seeds = SeedState::new(policy);
    loop {
        let candidates: Vec<u32> = (0..n).filter(|&p| table.len(p) >= 2).collect();
        let Some(start) = seeds.pick(&candidates) else {
            break; // All lists are singletons.
        };
        let rotation = find_rotation(&mut table, start);
        log(RoommatesEvent::Rotation {
            xs: rotation.xs.clone(),
            ys: rotation.ys.clone(),
        });
        stats.rotations += 1;
        if let Some(culprit) = eliminate_rotation(&mut table, &rotation) {
            log(RoommatesEvent::ListEmptied { who: culprit });
            return RoommatesOutcome::NoStableMatching { culprit, stats };
        }
    }

    // Every reduced list is a singleton: read off the matching.
    let mut partner = vec![0u32; inst.n()];
    for p in 0..n {
        partner[p as usize] = table.first(p).expect("singleton lists are non-empty");
    }
    RoommatesOutcome::Stable {
        matching: RoommatesMatching::new(partner),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::is_roommates_stable;
    use kmatch_prefs::gen::paper::{no_stable_roommates_4, section3b_left, section3b_right};
    use kmatch_prefs::gen::uniform::uniform_roommates;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn paper_left_instance_solves_stably() {
        let inst = section3b_left();
        let out = solve(&inst);
        let m = out
            .matching()
            .expect("paper: left instance has a stable matching");
        assert!(is_roommates_stable(&inst, m));
    }

    #[test]
    fn paper_right_instance_has_no_stable_matching() {
        // Paper: "u's reduced list is empty. Therefore, there is no stable
        // matching."
        let out = solve(&section3b_right());
        assert!(!out.is_stable());
    }

    #[test]
    fn classic_4_instance_has_no_stable_matching() {
        let out = solve(&no_stable_roommates_4());
        assert!(!out.is_stable());
    }

    #[test]
    fn random_instances_results_verified() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let mut stable_count = 0;
        for _ in 0..50 {
            let inst = uniform_roommates(10, &mut rng);
            match solve(&inst) {
                RoommatesOutcome::Stable { matching, .. } => {
                    assert!(is_roommates_stable(&inst, &matching));
                    stable_count += 1;
                }
                RoommatesOutcome::NoStableMatching { .. } => {
                    // Cross-checked exhaustively in brute.rs tests.
                }
            }
        }
        assert!(stable_count > 20, "most random even instances are solvable");
    }

    #[test]
    fn odd_instances_never_stable() {
        let mut rng = ChaCha8Rng::seed_from_u64(14);
        for _ in 0..10 {
            let inst = uniform_roommates(7, &mut rng);
            assert!(
                !solve(&inst).is_stable(),
                "odd n cannot have a perfect matching"
            );
        }
    }

    #[test]
    fn stats_are_populated() {
        let out = solve(&section3b_left());
        let stats = out.stats();
        assert!(stats.proposals >= 6);
    }
}
