//! Reusable scratch state for the zero-allocation Irving engine: implicit
//! phase-1 deletion thresholds plus a compact doubly-linked arena holding
//! the phase-1 survivors for phase 2, all grown once and reused across
//! solves.
//!
//! ## Two-tier reduced tables
//!
//! The reference [`crate::active::ActiveTable`] masks an `n × n` bool
//! matrix and pays for every deletion individually — on large uniform
//! instances phase 1 deletes *millions* of pairs (each a scattered write),
//! plus an O(n) rescan per truncation. The workspace exploits the
//! structure of phase-1 deletions instead:
//!
//! **Phase 1 — implicit deletions.** Every phase-1 removal comes from one
//! rule: when `y` holds a proposal from `x`, everything ranked below `x`
//! on `y`'s list dies. So the reduced table is fully described by one
//! monotone threshold per participant — `thresh[p]` = rank of the
//! proposal `p` currently holds ([`NONE`] = untruncated) — and the pair
//! `(p, q)` is alive iff
//!
//! ```text
//! rank_p(q) <= thresh[p]  &&  rank_q(p) <= thresh[q]
//! ```
//!
//! A truncation is a single store into `thresh`; the O(list) deletions it
//! implies are never performed. `first(x)` walks `x`'s CSR row from a
//! monotone per-participant cursor (`scan`), paying one rank probe per
//! permanently-dead entry passed — amortized O(1) per proposal.
//!
//! **Phase 2 — compact linked arena.** When phase 1 completes,
//! [`RoommatesWorkspace::materialize`] evaluates the predicate once per
//! still-plausible entry and packs the survivors (typically a tiny
//! fraction of the instance) into a dense arena threaded with
//! `succ`/`pred` links: `first`/`second`/`last` are O(1) pointer hops,
//! the bidirectional delete of a pair is two O(1) unlinks, and
//! `truncate_below` severs a tail in O(1) plus O(1) per actually-deleted
//! entry. Emptiness is signalled by the delete that empties a list
//! (`len` hitting zero in [`RoommatesWorkspace::unlink`]), replacing the
//! reference's O(n) post-rotation scan.
//!
//! Entries are only ever deleted, never restored, which is what makes the
//! `scan` cursors here and the monotone seed cursors in [`crate::engine`]
//! sound.

use kmatch_prefs::RoommatesPrefs;

use crate::solver::SolveStats;

/// Niche marker for "no node / no participant / untruncated" in the
/// workspace tables.
pub(crate) const NONE: u32 = u32::MAX;

/// Footer recorded by the engine at every exit of a completed solve —
/// the state [`RoommatesWorkspace::resolve_delta`](crate::warm) needs to
/// replay the previous outcome without re-running the engine.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SolveFooter {
    /// Participant count of the solved instance.
    pub(crate) n: usize,
    /// Whether the solve produced a stable matching.
    pub(crate) stable: bool,
    /// The emptied-list certificate when `stable` is false.
    pub(crate) culprit: u32,
    /// Counters of the recorded solve, replayed verbatim on a warm hit.
    pub(crate) stats: SolveStats,
}

/// Reusable scratch buffers for the fast Irving engine.
///
/// A workspace grows to the largest instance it has seen and never
/// shrinks; solving through one repeatedly is allocation-free in the
/// steady state (the only per-solve allocation is the partner array owned
/// by a returned stable matching — unsolvable instances allocate nothing).
/// Workspaces are cheap to create and freely reusable across unrelated
/// instances of any size.
///
/// ```
/// use kmatch_roommates::{solve_reference, RoommatesWorkspace};
/// use kmatch_prefs::gen::paper::section3b_left;
///
/// let inst = section3b_left();
/// let mut ws = RoommatesWorkspace::new();
/// let fast = ws.solve(&inst);
/// let reference = solve_reference(&inst);
/// assert_eq!(fast.matching(), reference.matching());
/// ```
#[derive(Debug, Clone, Default)]
pub struct RoommatesWorkspace {
    // ---- phase 1: implicit deletions via rank thresholds ----
    /// `thresh[p]`: highest rank still alive on `p`'s own side — the rank
    /// of the proposal `p` currently holds — or [`NONE`] (= `u32::MAX`,
    /// so `rank <= thresh[p]` is trivially true) before `p` receives one.
    pub(crate) thresh: Vec<u32>,
    /// `scan[p]`: first possibly-alive rank position of `p`'s CSR row.
    /// Monotone: every position left of it is permanently dead.
    pub(crate) scan: Vec<u32>,
    /// `holds[p]`: proposer whose proposal `p` currently holds, or [`NONE`].
    pub(crate) holds: Vec<u32>,
    /// `first_rank[p]`: rank of the *first* proposal `p` ever held this
    /// solve, or [`NONE`]. Thresholds only tighten, so this is the loosest
    /// bound `p`'s row was ever probed against — the warm-start criterion
    /// in [`crate::warm`] needs it, not the (tighter) final threshold.
    pub(crate) first_rank: Vec<u32>,
    /// Stack of participants with an outstanding proposal to make.
    pub(crate) free: Vec<u32>,
    // ---- phase 2: doubly-linked arena over the phase-1 survivors ----
    /// Survivor partner ids, best-first per row (the arena node space).
    pub(crate) entries: Vec<u32>,
    /// Arena row offsets: `p`'s survivors are nodes `off[p]..off[p + 1]`.
    pub(crate) off: Vec<u32>,
    /// `succ[e]`: next surviving node in the same row, or [`NONE`].
    pub(crate) succ: Vec<u32>,
    /// `pred[e]`: previous surviving node in the same row, or [`NONE`].
    pub(crate) pred: Vec<u32>,
    /// `alive[e]`: is arena node `e` still in its reduced list?
    pub(crate) alive: Vec<bool>,
    /// `head[p]`: node of `p`'s most preferred surviving entry, or [`NONE`].
    pub(crate) head: Vec<u32>,
    /// `tail[p]`: node of `p`'s least preferred surviving entry, or [`NONE`].
    pub(crate) tail: Vec<u32>,
    /// Surviving entries per participant (arena only — phase 2).
    pub(crate) len: Vec<u32>,
    // ---- phase-2 rotation scratch ----
    /// `pos[p]`: index of `p` in the current rotation walk, or [`NONE`]
    /// (cleared back to [`NONE`] for walked entries after each rotation).
    pub(crate) pos: Vec<u32>,
    /// The rotation walk (tail prefix + cycle).
    pub(crate) seq: Vec<u32>,
    /// The rotation cycle `x_i`.
    pub(crate) xs: Vec<u32>,
    /// `ys[i] = first(xs[i])` at discovery time.
    pub(crate) ys: Vec<u32>,
    /// Elimination targets `(y_{i+1}, x_i)`, gathered before any deletion.
    pub(crate) targets: Vec<(u32, u32)>,
    /// Partners removed by the current truncation (traced runs only).
    pub(crate) removed: Vec<u32>,
    // ---- warm-start footer ----
    /// Outcome of the last completed solve, or `None` when the buffers do
    /// not hold a finished execution (never solved, or mid-solve).
    pub(crate) footer: Option<SolveFooter>,
}

impl RoommatesWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        RoommatesWorkspace::default()
    }

    /// A workspace pre-sized for instances of up to `n` participants with
    /// up to `entries` total preference entries (complete lists have
    /// `n·(n−1)`).
    pub fn with_capacity(n: usize, entries: usize) -> Self {
        RoommatesWorkspace {
            thresh: Vec::with_capacity(n),
            scan: Vec::with_capacity(n),
            holds: Vec::with_capacity(n),
            first_rank: Vec::with_capacity(n),
            free: Vec::with_capacity(n),
            entries: Vec::with_capacity(entries),
            off: Vec::with_capacity(n + 1),
            succ: Vec::with_capacity(entries),
            pred: Vec::with_capacity(entries),
            alive: Vec::with_capacity(entries),
            head: Vec::with_capacity(n),
            tail: Vec::with_capacity(n),
            len: Vec::with_capacity(n),
            pos: Vec::with_capacity(n),
            seq: Vec::with_capacity(n),
            xs: Vec::with_capacity(n),
            ys: Vec::with_capacity(n),
            targets: Vec::with_capacity(n),
            removed: Vec::new(),
            footer: None,
        }
    }

    /// Reset the phase-1 state (and all scratch) for `inst` — O(n), no
    /// per-entry work. The phase-2 arena is rebuilt later by
    /// [`RoommatesWorkspace::materialize`]. Returns whether the phase-1
    /// buffers had to grow (the metrics fresh/reuse signal; the arena
    /// grows lazily in `materialize` and tracks the same high-water mark).
    pub(crate) fn reset<R: RoommatesPrefs>(&mut self, inst: &R) -> bool {
        let n = inst.n();
        let fresh = self.thresh.capacity() < n
            || self.holds.capacity() < n
            || self.free.capacity() < n;
        self.footer = None;
        self.thresh.clear();
        self.thresh.resize(n, NONE);
        self.scan.clear();
        self.scan.resize(n, 0);
        self.holds.clear();
        self.holds.resize(n, NONE);
        self.first_rank.clear();
        self.first_rank.resize(n, NONE);
        self.free.clear();
        self.free.extend((0..n as u32).rev());
        self.pos.clear();
        self.pos.resize(n, NONE);
        self.seq.clear();
        self.xs.clear();
        self.ys.clear();
        self.targets.clear();
        self.removed.clear();
        fresh
    }

    /// Most preferred partner still alive on `x`'s *phase-1* list, or
    /// `None` if the list is empty (the no-stable-matching signal).
    ///
    /// Walks `x`'s CSR row from the monotone `scan` cursor, probing the
    /// partner-side threshold for each candidate. Every position passed is
    /// permanently dead (thresholds only tighten), so the cursor never
    /// revisits it: total walk length over a whole solve is bounded by the
    /// entries phase 1 deletes, amortized O(1) per proposal.
    pub(crate) fn p1_first<R: RoommatesPrefs>(&mut self, inst: &R, x: u32) -> Option<u32> {
        // Own-side truncation bound: positions above thresh[x] are dead.
        // `thresh` is the rank of the pair x currently holds — that pair
        // is alive, so the cursor can never sit beyond the bound.
        let end = inst
            .list_len(x)
            .min(self.thresh[x as usize].saturating_add(1));
        let mut h = self.scan[x as usize];
        debug_assert!(h <= end, "scan cursor past the live bound");
        // 4-lane strip over the dead prefix, on fused candidate words
        // (`rank_of(q, x) << 32 | q`, one streamed load per probe instead
        // of a random rank-table line — see
        // [`kmatch_prefs::RoommatesPrefs::candidate_entry`]). The
        // liveness predicate is pure, so over-evaluating the trailing
        // lanes of the hit strip has no side effects; the first live lane
        // is recovered from the mask bit index. Dead prefixes dominate
        // (one hit per proposal vs. millions of dead probes on large
        // instances), so most strips fold to an all-dead mask with one
        // branch instead of four.
        while h + 4 <= end {
            let e0 = inst.candidate_entry(x, h);
            let e1 = inst.candidate_entry(x, h + 1);
            let e2 = inst.candidate_entry(x, h + 2);
            let e3 = inst.candidate_entry(x, h + 3);
            let mask = u32::from((e0 >> 32) as u32 <= self.thresh[e0 as u32 as usize])
                | u32::from((e1 >> 32) as u32 <= self.thresh[e1 as u32 as usize]) << 1
                | u32::from((e2 >> 32) as u32 <= self.thresh[e2 as u32 as usize]) << 2
                | u32::from((e3 >> 32) as u32 <= self.thresh[e3 as u32 as usize]) << 3;
            if mask != 0 {
                h += mask.trailing_zeros();
                self.scan[x as usize] = h;
                return Some(inst.candidate(x, h));
            }
            h += 4;
        }
        while h < end {
            let e = inst.candidate_entry(x, h);
            if (e >> 32) as u32 <= self.thresh[e as u32 as usize] {
                self.scan[x as usize] = h;
                return Some(e as u32);
            }
            h += 1;
        }
        self.scan[x as usize] = h;
        None
    }

    /// Append to `self.removed` the partners the phase-1 truncation
    /// `thresh[y] := new_rank` is about to delete, in removal (rank)
    /// order — the entries of `y`'s row in `(new_rank, old bound]` whose
    /// partner side is still alive. Traced runs only; must be called
    /// *before* the threshold is updated.
    pub(crate) fn collect_p1_removed<R: RoommatesPrefs>(&mut self, inst: &R, y: u32, new_rank: u32) {
        let old_end = inst
            .list_len(y)
            .min(self.thresh[y as usize].saturating_add(1));
        for pos in (new_rank + 1)..old_end {
            let z = inst.candidate(y, pos);
            if inst.rank_of(z, y) <= self.thresh[z as usize] {
                self.removed.push(z);
            }
        }
    }

    /// Evaluate the phase-1 liveness predicate once per still-plausible
    /// entry and pack the survivors into the doubly-linked arena phase 2
    /// runs on. Rows scan `scan[p]..=thresh[p]` only, so the cost is
    /// O(Σ thresh) ≤ O(total entries) with one partner-side rank probe
    /// per candidate — and the arena itself is as small as the reduced
    /// tables actually are.
    pub(crate) fn materialize<R: RoommatesPrefs>(&mut self, inst: &R) {
        let n = inst.n();
        self.entries.clear();
        self.off.clear();
        self.succ.clear();
        self.pred.clear();
        self.alive.clear();
        self.head.clear();
        self.tail.clear();
        self.len.clear();
        self.off.push(0);
        for p in 0..n as u32 {
            let base = self.entries.len() as u32;
            let end = inst
                .list_len(p)
                .min(self.thresh[p as usize].saturating_add(1));
            // Same 4-lane fused-word strip as `p1_first`: survivors are
            // sparse, so most strips fold to an all-dead mask with one
            // branch instead of four. Set bits are drained in index order
            // to keep the arena row best-first.
            let mut pos = self.scan[p as usize];
            while pos + 4 <= end {
                let e0 = inst.candidate_entry(p, pos);
                let e1 = inst.candidate_entry(p, pos + 1);
                let e2 = inst.candidate_entry(p, pos + 2);
                let e3 = inst.candidate_entry(p, pos + 3);
                let mut mask = u32::from((e0 >> 32) as u32 <= self.thresh[e0 as u32 as usize])
                    | u32::from((e1 >> 32) as u32 <= self.thresh[e1 as u32 as usize]) << 1
                    | u32::from((e2 >> 32) as u32 <= self.thresh[e2 as u32 as usize]) << 2
                    | u32::from((e3 >> 32) as u32 <= self.thresh[e3 as u32 as usize]) << 3;
                while mask != 0 {
                    self.entries.push(inst.candidate(p, pos + mask.trailing_zeros()));
                    mask &= mask - 1;
                }
                pos += 4;
            }
            for pos in pos..end {
                let e = inst.candidate_entry(p, pos);
                if (e >> 32) as u32 <= self.thresh[e as u32 as usize] {
                    self.entries.push(e as u32);
                }
            }
            let e = self.entries.len() as u32;
            for i in base..e {
                self.pred.push(if i == base { NONE } else { i - 1 });
                self.succ.push(if i + 1 == e { NONE } else { i + 1 });
            }
            self.alive.resize(e as usize, true);
            self.head.push(if base == e { NONE } else { base });
            self.tail.push(if base == e { NONE } else { e - 1 });
            self.len.push(e - base);
            self.off.push(e);
        }
    }

    /// Most preferred surviving partner of `p` in the arena, or `None` if
    /// the reduced list is empty.
    #[inline]
    pub(crate) fn first(&self, p: u32) -> Option<u32> {
        let h = self.head[p as usize];
        (h != NONE).then(|| self.entries[h as usize])
    }

    /// Second surviving partner of `p` — a single `succ` hop off the head.
    #[inline]
    pub(crate) fn second(&self, p: u32) -> Option<u32> {
        let h = self.head[p as usize];
        if h == NONE {
            return None;
        }
        let s = self.succ[h as usize];
        (s != NONE).then(|| self.entries[s as usize])
    }

    /// Least preferred surviving partner of `p`.
    #[inline]
    pub(crate) fn last(&self, p: u32) -> Option<u32> {
        let t = self.tail[p as usize];
        (t != NONE).then(|| self.entries[t as usize])
    }

    /// Arena node holding `q` in `p`'s row (alive or deleted). Reduced
    /// rows are short, so the linear probe is O(reduced row); every
    /// phase-2 caller already touches that row.
    #[inline]
    pub(crate) fn node_of(&self, p: u32, q: u32) -> u32 {
        let lo = self.off[p as usize];
        let hi = self.off[p as usize + 1];
        for e in lo..hi {
            if self.entries[e as usize] == q {
                return e;
            }
        }
        debug_assert!(false, "{q} not in {p}'s materialized row");
        NONE
    }

    /// Unlink node `e` from `owner`'s row. Returns `true` iff this emptied
    /// `owner`'s reduced list — the O(1) delete-time no-stable-matching
    /// signal.
    #[inline]
    pub(crate) fn unlink(&mut self, owner: u32, e: u32) -> bool {
        debug_assert!(self.alive[e as usize], "unlink of a deleted node");
        self.alive[e as usize] = false;
        let (s, p) = (self.succ[e as usize], self.pred[e as usize]);
        if p == NONE {
            self.head[owner as usize] = s;
        } else {
            self.succ[p as usize] = s;
        }
        if s == NONE {
            self.tail[owner as usize] = p;
        } else {
            self.pred[s as usize] = p;
        }
        self.len[owner as usize] -= 1;
        self.len[owner as usize] == 0
    }

    /// Bidirectionally delete every surviving entry of `p`'s arena row
    /// strictly worse than `q` (which must be in the row, though a
    /// rotation elimination may already have deleted the pair). The first
    /// participant whose list empties is written to `culprit` (if still
    /// [`NONE`]); deletions run best-to-worst, matching the reference
    /// table's removal order, and a delete that empties both sides reports
    /// the removed partner before `p` itself.
    ///
    /// `p`'s own tail is severed in O(1) when the kept entry survives;
    /// otherwise the boundary is recovered by walking back over the doomed
    /// suffix, which is paid for by the deletions themselves. Either way
    /// the cost is O(deleted) unlinks. When `collect_removed` is set the
    /// removed partners are appended to `self.removed` in removal order.
    pub(crate) fn truncate_below(
        &mut self,
        p: u32,
        q: u32,
        culprit: &mut u32,
        collect_removed: bool,
    ) {
        let keep = self.node_of(p, q);
        // Locate the first surviving node strictly worse than `keep` and
        // the surviving node preceding it (the new tail). Rows stay sorted
        // by rank, so when `keep` itself is gone the boundary is found by
        // walking back from the tail over nodes about to be deleted.
        let (boundary, first_doomed) = if self.alive[keep as usize] {
            (keep, self.succ[keep as usize])
        } else {
            let t = self.tail[p as usize];
            if t == NONE || t < keep {
                return; // nothing worse than q survives
            }
            let mut s = t;
            loop {
                let pr = self.pred[s as usize];
                if pr == NONE || pr < keep {
                    break (pr, s);
                }
                s = pr;
            }
        };
        if first_doomed == NONE {
            return;
        }
        // Sever p's tail in one step; the loop below only pays for the
        // partner-side unlinks of entries that actually existed.
        if boundary == NONE {
            self.head[p as usize] = NONE;
            self.tail[p as usize] = NONE;
        } else {
            self.succ[boundary as usize] = NONE;
            self.tail[p as usize] = boundary;
        }
        let mut cur = first_doomed;
        while cur != NONE {
            let z = self.entries[cur as usize];
            self.alive[cur as usize] = false;
            self.len[p as usize] -= 1;
            let zn = self.node_of(z, p);
            if self.unlink(z, zn) && *culprit == NONE {
                *culprit = z;
            }
            if collect_removed {
                self.removed.push(z);
            }
            cur = self.succ[cur as usize];
        }
        // p itself empties only when its whole surviving list was worse
        // than q (possible once rotation eliminations delete (p, q)).
        if self.len[p as usize] == 0 && *culprit == NONE {
            *culprit = p;
        }
    }

    /// Current reduced list of `p` in preference order (test/debug only —
    /// allocates). Valid after [`RoommatesWorkspace::materialize`].
    pub fn reduced_list(&self, p: u32) -> Vec<u32> {
        let mut out = Vec::new();
        let mut e = self.head[p as usize];
        while e != NONE {
            out.push(self.entries[e as usize]);
            e = self.succ[e as usize];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmatch_prefs::gen::paper::section3b_left;
    use kmatch_prefs::RoommatesInstance;

    fn fresh(inst: &RoommatesInstance) -> RoommatesWorkspace {
        let mut ws = RoommatesWorkspace::new();
        ws.reset(inst);
        // With untouched thresholds every pair is alive, so the arena
        // holds the full preference lists.
        ws.materialize(inst);
        ws
    }

    fn delete_pair(ws: &mut RoommatesWorkspace, p: u32, q: u32) {
        let pn = ws.node_of(p, q);
        let qn = ws.node_of(q, p);
        ws.unlink(p, pn);
        ws.unlink(q, qn);
    }

    #[test]
    fn linked_first_second_last_track_deletions() {
        let inst = section3b_left();
        let mut ws = fresh(&inst);
        // m: u' w w' u = [5, 2, 3, 4]
        assert_eq!(ws.first(0), Some(5));
        assert_eq!(ws.second(0), Some(2));
        assert_eq!(ws.last(0), Some(4));
        delete_pair(&mut ws, 0, 5);
        assert_eq!(ws.first(0), Some(2));
        assert_eq!(ws.second(0), Some(3));
        delete_pair(&mut ws, 0, 4);
        assert_eq!(ws.last(0), Some(3));
        assert_eq!(ws.len[0], 2);
        // Bidirectional: 5 (u') lost m from its list [0, 2, 3, 1].
        assert_eq!(ws.first(5), Some(2));
    }

    #[test]
    fn truncate_severs_tail_and_partners() {
        let inst = section3b_left();
        let mut ws = fresh(&inst);
        // m holds a proposal from w (=2): remove everyone worse than w on
        // m's list [5, 2, 3, 4] -> [5, 2].
        let mut culprit = NONE;
        ws.truncate_below(0, 2, &mut culprit, true);
        assert_eq!(ws.reduced_list(0), vec![5, 2]);
        assert_eq!(ws.removed, vec![3, 4], "removal order is best-to-worst");
        assert_eq!(culprit, NONE);
        // Bidirectional: w' (=3) and u (=4) lost m.
        assert!(!ws.reduced_list(3).contains(&0));
        assert!(!ws.reduced_list(4).contains(&0));
        assert_eq!(ws.len[0], 2);
    }

    #[test]
    fn emptiness_signalled_at_delete_time() {
        let inst = section3b_left();
        let mut ws = fresh(&inst);
        let mut emptied = false;
        for q in [5, 2, 3, 4] {
            let pn = ws.node_of(0, q);
            let qn = ws.node_of(q, 0);
            emptied |= ws.unlink(0, pn);
            ws.unlink(q, qn);
        }
        assert!(emptied, "final unlink must report the empty list");
        assert_eq!(ws.len[0], 0);
        assert_eq!(ws.first(0), None);
        assert_eq!(ws.second(0), None);
        assert_eq!(ws.last(0), None);
    }

    #[test]
    fn thresholds_drive_the_materialized_arena() {
        let inst = section3b_left();
        let mut ws = RoommatesWorkspace::new();
        ws.reset(&inst);
        // m (=0) holds a proposal from w (=2), rank 1 on m's list
        // [5, 2, 3, 4]: the implicit truncation kills (0,3) and (0,4)
        // on both sides.
        ws.thresh[0] = inst.rank_of(0, 2);
        ws.materialize(&inst);
        assert_eq!(ws.reduced_list(0), vec![5, 2]);
        assert!(!ws.reduced_list(3).contains(&0));
        assert!(!ws.reduced_list(4).contains(&0));
        // Untouched rows keep their full lists.
        assert_eq!(ws.reduced_list(5), inst.list(5).to_vec());
    }

    #[test]
    fn scan_cursor_skips_only_dead_prefixes() {
        let inst = section3b_left();
        let mut ws = RoommatesWorkspace::new();
        ws.reset(&inst);
        // u' (=5, list [0, 2, 3, 1]) truncates below w (=2, rank 1):
        // every pair (z, 5) with rank_5(z) > 1 dies, including (1, 5) —
        // m''s head.
        ws.thresh[5] = 1;
        assert_eq!(ws.p1_first(&inst, 1), Some(2), "m''s head pair died");
        assert_eq!(ws.scan[1], 1, "cursor advanced past the dead prefix");
        // The cursor result matches the materialized arena head.
        ws.materialize(&inst);
        assert_eq!(ws.first(1), Some(2));
    }

    #[test]
    fn reset_restores_a_reused_workspace() {
        let inst = section3b_left();
        let mut ws = RoommatesWorkspace::with_capacity(6, 24);
        ws.reset(&inst);
        ws.materialize(&inst);
        let mut culprit = NONE;
        ws.truncate_below(0, 2, &mut culprit, false);
        ws.reset(&inst);
        ws.materialize(&inst);
        assert_eq!(ws.reduced_list(0), vec![5, 2, 3, 4]);
        assert!(ws.alive.iter().all(|&a| a));
        assert_eq!(ws.free.len(), 6);
    }
}
