//! Roommates matchings and their stability.

use kmatch_prefs::RoommatesInstance;

/// A perfect matching over the participants: `partner[p] = q` with
/// `partner[q] = p`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoommatesMatching {
    partner: Vec<u32>,
}

impl RoommatesMatching {
    /// Build from the partner array, validating the involution property.
    ///
    /// # Panics
    /// If `partner` is not a fixed-point-free involution of `0..n`.
    pub fn new(partner: Vec<u32>) -> Self {
        let n = partner.len();
        for (p, &q) in partner.iter().enumerate() {
            assert!((q as usize) < n, "partner out of range");
            assert_ne!(q as usize, p, "self-matching is not allowed");
            assert_eq!(
                partner[q as usize] as usize, p,
                "partner relation must be symmetric"
            );
        }
        RoommatesMatching { partner }
    }

    /// Number of participants.
    pub fn n(&self) -> usize {
        self.partner.len()
    }

    /// Partner of `p`.
    #[inline]
    pub fn partner(&self, p: u32) -> u32 {
        self.partner[p as usize]
    }

    /// The full partner array (`partners()[p]` is `p`'s partner).
    pub fn partners(&self) -> &[u32] {
        &self.partner
    }

    /// The pairs `(p, q)` with `p < q`.
    pub fn pairs(&self) -> Vec<(u32, u32)> {
        self.partner
            .iter()
            .enumerate()
            .filter_map(|(p, &q)| {
                if (p as u32) < q {
                    Some((p as u32, q))
                } else {
                    None
                }
            })
            .collect()
    }
}

/// Find a blocking pair of the matching under `inst`: a mutually-acceptable
/// pair `(p, q)`, not matched together, where both strictly prefer each
/// other to their assigned partners.
pub fn find_roommates_blocking_pair(
    inst: &RoommatesInstance,
    matching: &RoommatesMatching,
) -> Option<(u32, u32)> {
    let n = inst.n();
    assert_eq!(matching.n(), n, "matching must cover the instance");
    for p in 0..n as u32 {
        let mine = matching.partner(p);
        for &q in inst.list(p) {
            if q == mine {
                break; // Entries after p's partner cannot improve p.
            }
            // p strictly prefers q (it appears before `mine`). Check q.
            if inst.prefers(q, p, matching.partner(q)) {
                return Some((p.min(q), p.max(q)));
            }
        }
    }
    None
}

/// Is the matching stable (perfect and free of blocking pairs)?
pub fn is_roommates_stable(inst: &RoommatesInstance, matching: &RoommatesMatching) -> bool {
    // Every matched pair must be mutually acceptable.
    if (0..inst.n() as u32).any(|p| !inst.acceptable(p, matching.partner(p))) {
        return false;
    }
    find_roommates_blocking_pair(inst, matching).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmatch_prefs::gen::paper::section3b_left;

    #[test]
    fn involution_enforced() {
        let m = RoommatesMatching::new(vec![1, 0, 3, 2]);
        assert_eq!(m.partner(0), 1);
        assert_eq!(m.pairs(), vec![(0, 1), (2, 3)]);
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn asymmetric_rejected() {
        let _ = RoommatesMatching::new(vec![1, 2, 0]);
    }

    #[test]
    #[should_panic(expected = "self-matching")]
    fn self_match_rejected() {
        let _ = RoommatesMatching::new(vec![0, 2, 1]);
    }

    #[test]
    fn paper_matching_is_stable() {
        // §III-B left: final matching (m,u'), (m',w), (w',u)
        //             = (0,5), (1,2), (3,4).
        let inst = section3b_left();
        let m = RoommatesMatching::new(vec![5, 2, 1, 4, 3, 0]);
        assert!(is_roommates_stable(&inst, &m));
    }

    #[test]
    fn blocking_pair_detected() {
        // §III-B left with a deliberately bad matching:
        // (m,w), (m',u'), (w',u) = (0,2), (1,5), (3,4).
        // u' ranks m first and m ranks u' first, but they are apart:
        // (m, u') blocks.
        let inst = section3b_left();
        let m = RoommatesMatching::new(vec![2, 5, 0, 4, 3, 1]);
        assert_eq!(find_roommates_blocking_pair(&inst, &m), Some((0, 5)));
        assert!(!is_roommates_stable(&inst, &m));
    }

    #[test]
    fn unacceptable_pair_is_unstable() {
        // Matching same-gender pair (m, m') violates acceptability.
        let inst = section3b_left();
        let m = RoommatesMatching::new(vec![1, 0, 4, 5, 2, 3]);
        assert!(!is_roommates_stable(&inst, &m));
    }
}
