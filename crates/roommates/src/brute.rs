//! Exhaustive ground truth for small instances.
//!
//! Enumerates every perfect matching of the acceptability graph and filters
//! the stable ones — factorial cost, used only at `n ≲ 12` to validate the
//! Irving solver, the §III-B traces, and the Theorem-1 construction.

use kmatch_prefs::RoommatesInstance;

use crate::matching::{is_roommates_stable, RoommatesMatching};

/// Enumerate all perfect matchings of the acceptability graph.
pub fn all_perfect_matchings(inst: &RoommatesInstance) -> Vec<RoommatesMatching> {
    let n = inst.n();
    let mut out = Vec::new();
    if !n.is_multiple_of(2) {
        return out;
    }
    let mut partner = vec![u32::MAX; n];
    fn recurse(inst: &RoommatesInstance, partner: &mut Vec<u32>, out: &mut Vec<RoommatesMatching>) {
        // First unmatched participant.
        let Some(p) = partner.iter().position(|&x| x == u32::MAX) else {
            out.push(RoommatesMatching::new(partner.clone()));
            return;
        };
        let p = p as u32;
        for &q in inst.list(p) {
            if partner[q as usize] == u32::MAX {
                partner[p as usize] = q;
                partner[q as usize] = p;
                recurse(inst, partner, out);
                partner[p as usize] = u32::MAX;
                partner[q as usize] = u32::MAX;
            }
        }
    }
    recurse(inst, &mut partner, &mut out);
    out
}

/// Enumerate all **stable** matchings of a small instance.
pub fn all_stable_roommates_matchings(inst: &RoommatesInstance) -> Vec<RoommatesMatching> {
    all_perfect_matchings(inst)
        .into_iter()
        .filter(|m| is_roommates_stable(inst, m))
        .collect()
}

/// Does any stable matching exist? (Exhaustive; small `n` only.)
pub fn stable_matching_exists_brute(inst: &RoommatesInstance) -> bool {
    !all_stable_roommates_matchings(inst).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{solve, RoommatesOutcome};
    use kmatch_prefs::gen::adversarial::theorem1_roommates;
    use kmatch_prefs::gen::paper::{no_stable_roommates_4, section3b_left, section3b_right};
    use kmatch_prefs::gen::uniform::uniform_roommates;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn left_instance_paper_matching_found() {
        let inst = section3b_left();
        let stable = all_stable_roommates_matchings(&inst);
        assert!(!stable.is_empty());
        // The paper's trace result (m,u'), (m',w), (w',u) must be among
        // the stable matchings.
        let paper = RoommatesMatching::new(vec![5, 2, 1, 4, 3, 0]);
        assert!(stable.contains(&paper), "paper matching must be stable");
    }

    #[test]
    fn right_instance_brute_confirms_nonexistence() {
        assert!(!stable_matching_exists_brute(&section3b_right()));
        assert!(!stable_matching_exists_brute(&no_stable_roommates_4()));
    }

    #[test]
    fn solver_agrees_with_brute_force() {
        let mut rng = ChaCha8Rng::seed_from_u64(15);
        let (mut solvable, mut unsolvable) = (0, 0);
        for _ in 0..100 {
            let inst = uniform_roommates(8, &mut rng);
            let brute = stable_matching_exists_brute(&inst);
            match solve(&inst) {
                RoommatesOutcome::Stable { matching, .. } => {
                    assert!(brute, "solver found a matching brute force missed?!");
                    assert!(is_roommates_stable(&inst, &matching));
                    solvable += 1;
                }
                RoommatesOutcome::NoStableMatching { .. } => {
                    assert!(!brute, "solver gave up although a stable matching exists");
                    unsolvable += 1;
                }
            }
        }
        assert!(solvable > 0, "expected some solvable instances");
        // Unsolvable instances are rare at n = 8 but the assertion above
        // is the point: exact agreement either way.
        let _ = unsolvable;
    }

    #[test]
    fn theorem1_small_instances_unsolvable_by_brute_force() {
        // Theorem 1: the adversarial k-partite construction has a perfect
        // matching but no stable one.
        for (k, n) in [(3usize, 2usize), (4, 1), (3, 4)] {
            if (k * n) % 2 != 0 {
                continue;
            }
            let inst = theorem1_roommates(k, n);
            assert!(
                !all_perfect_matchings(&inst).is_empty(),
                "perfect matching must exist for k={k}, n={n}"
            );
            assert!(
                !stable_matching_exists_brute(&inst),
                "no stable matching may exist for k={k}, n={n}"
            );
        }
    }

    #[test]
    fn perfect_matching_count_complete_graph() {
        // Complete graph on 6 participants: (6-1)!! = 15 perfect matchings.
        let inst = uniform_roommates(6, &mut ChaCha8Rng::seed_from_u64(16));
        assert_eq!(all_perfect_matchings(&inst).len(), 15);
    }
}
