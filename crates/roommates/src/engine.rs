//! The zero-allocation Irving engine: phase 1 + phase 2 over the two-tier
//! reduced tables of [`RoommatesWorkspace`].
//!
//! Mirrors the reference solver ([`crate::solver::solve_reference`])
//! **exactly** — same proposal schedule, same rotation discovery order,
//! same elimination order — so matchings, no-stable-matching certificates,
//! proposal counts, and rotation counts are identical (pinned by the
//! differential suite in `tests/prop_fastpath.rs`). What changes is the
//! cost model:
//!
//! * Phase-1 deletions are **implicit**: a truncation is one store into a
//!   rank threshold, and the millions of pair deletions it implies on
//!   large instances are never executed (the reference pays a scattered
//!   write per deleted pair plus an O(n) rescan per truncation). Finding
//!   who to propose to is a monotone cursor walk, amortized O(1) per
//!   proposal — see the workspace docs for the liveness predicate.
//! * Phase 2 runs on a compact doubly-linked arena holding just the
//!   phase-1 survivors: `first`/`second`/`last` are pointer hops,
//!   `truncate_below` pays O(deleted), and an emptied list is signalled
//!   by the delete that empties it, erasing the reference's O(n)
//!   post-rotation scan.
//! * The per-rotation candidate rescan (`(0..n).filter(len ≥ 2)` + a
//!   fresh `Vec` every rotation) is replaced by **monotone seed cursors**:
//!   reduced lists only ever shrink, so the least-indexed participant
//!   with `len ≥ 2` — overall and per side — only ever moves right. Each
//!   cursor advances amortized O(n) over the whole solve while preserving
//!   [`RotationPolicy`] seed semantics bit-for-bit (`fair_smp` depends on
//!   them).
//! * Tracing is erased at compile time via the same `Tracer`/`NoTrace`
//!   monomorphization as `kmatch-gs`: the untraced instantiation has no
//!   event hooks, no removed-entry collection, and performs **zero**
//!   steady-state allocations when run through a reused workspace (the
//!   partner array of a returned stable matching is the only per-solve
//!   allocation).

use kmatch_obs::{Metrics, NoMetrics};
use kmatch_prefs::RoommatesPrefs;
use kmatch_trace::{span, NoSpans, SpanSink};

use crate::matching::RoommatesMatching;
use crate::policy::RotationPolicy;
use crate::solver::{RoommatesOutcome, SolveStats};
use crate::trace::RoommatesEvent;
use crate::workspace::{RoommatesWorkspace, NONE};

/// Compile-time trace hook set; the [`NoTrace`] instantiation erases every
/// call site and skips removed-entry collection entirely.
pub(crate) trait Tracer {
    /// Whether hooks observe events (gates removed-entry collection).
    const ENABLED: bool;
    /// `from` proposed to `to`, displacing `displaced`.
    fn proposal(&mut self, from: u32, to: u32, displaced: Option<u32>);
    /// Holding the proposal pruned `holder`'s list below `kept`.
    fn truncation(&mut self, holder: u32, kept: u32, removed: &[u32]);
    /// Phase 2 found a rotation.
    fn rotation(&mut self, xs: &[u32], ys: &[u32]);
    /// A reduced list emptied.
    fn list_emptied(&mut self, who: u32);
}

/// Zero-sized tracer for the fast path.
pub(crate) struct NoTrace;

impl Tracer for NoTrace {
    const ENABLED: bool = false;
    #[inline(always)]
    fn proposal(&mut self, _from: u32, _to: u32, _displaced: Option<u32>) {}
    #[inline(always)]
    fn truncation(&mut self, _holder: u32, _kept: u32, _removed: &[u32]) {}
    #[inline(always)]
    fn rotation(&mut self, _xs: &[u32], _ys: &[u32]) {}
    #[inline(always)]
    fn list_emptied(&mut self, _who: u32) {}
}

/// Tracer forwarding paper-style [`RoommatesEvent`]s to a callback.
pub(crate) struct LogTrace<'a> {
    /// The event sink.
    pub log: &'a mut dyn FnMut(RoommatesEvent),
}

impl Tracer for LogTrace<'_> {
    const ENABLED: bool = true;
    fn proposal(&mut self, from: u32, to: u32, displaced: Option<u32>) {
        (self.log)(RoommatesEvent::Proposal {
            from,
            to,
            displaced,
        });
    }
    fn truncation(&mut self, holder: u32, kept: u32, removed: &[u32]) {
        (self.log)(RoommatesEvent::Truncation {
            holder,
            kept,
            removed: removed.to_vec(),
        });
    }
    fn rotation(&mut self, xs: &[u32], ys: &[u32]) {
        (self.log)(RoommatesEvent::Rotation {
            xs: xs.to_vec(),
            ys: ys.to_vec(),
        });
    }
    fn list_emptied(&mut self, who: u32) {
        (self.log)(RoommatesEvent::ListEmptied { who });
    }
}

/// Monotone seed cursors — the incremental replacement for the reference
/// solver's per-rotation `(0..n).filter(len ≥ 2)` rescan.
///
/// Invariant: every participant left of a cursor permanently fails that
/// cursor's predicate (`len ≥ 2`, plus side membership for the side
/// cursors). Deletions only shrink lists and sides are static, so the
/// invariant survives every rotation elimination and each cursor advances
/// at most `n` positions over the whole solve.
struct SeedCursors {
    /// Least index with `len ≥ 2` (candidate fallback `candidates[0]`).
    all: u32,
    /// Least candidate index on side `false` / side `true`.
    by_side: [u32; 2],
    /// Parity for [`RotationPolicy::AlternateSides`].
    next_side: bool,
}

impl SeedCursors {
    fn new() -> Self {
        SeedCursors {
            all: 0,
            by_side: [0, 0],
            next_side: false,
        }
    }

    /// Least `p ≥ cursor` on `side == want` with `len(p) ≥ 2`, advancing
    /// the side cursor past permanently disqualified participants.
    fn side_min(&mut self, len: &[u32], side: &[bool], want: bool) -> Option<u32> {
        let c = &mut self.by_side[usize::from(want)];
        let n = len.len() as u32;
        while *c < n && (side[*c as usize] != want || len[*c as usize] < 2) {
            *c += 1;
        }
        (*c < n).then_some(*c)
    }

    /// Choose the next rotation seed, preserving [`crate::policy::SeedState`]
    /// semantics exactly: `None` iff no list has length ≥ 2; sided policies
    /// fall back to the overall least candidate; the alternation parity
    /// advances only on successful picks.
    fn pick(&mut self, len: &[u32], policy: &RotationPolicy) -> Option<u32> {
        let n = len.len() as u32;
        while self.all < n && len[self.all as usize] < 2 {
            self.all += 1;
        }
        if self.all == n {
            return None;
        }
        let fallback = self.all;
        match policy {
            RotationPolicy::FirstAvailable => Some(fallback),
            RotationPolicy::AlternateSides { side } => {
                let want = self.next_side;
                self.next_side = !self.next_side;
                Some(self.side_min(len, side, want).unwrap_or(fallback))
            }
            RotationPolicy::PreferSide { side, seed_from } => {
                Some(self.side_min(len, side, *seed_from).unwrap_or(fallback))
            }
        }
    }
}

/// Phase 1 over the implicit threshold tables: the exact proposal
/// schedule of [`crate::phase1::phase1_logged`] (same free-stack order,
/// same truncations). Returns the culprit whose list emptied, if any.
fn phase1<R: RoommatesPrefs, T: Tracer, M: Metrics>(
    inst: &R,
    ws: &mut RoommatesWorkspace,
    proposals: &mut u64,
    tracer: &mut T,
    metrics: &mut M,
) -> Option<u32> {
    while let Some(x) = ws.free.pop() {
        // Like the reference, an emptied participant surfaces when it
        // proposes — the only moment phase 1 looks at its list.
        let Some(y) = ws.p1_first(inst, x) else {
            tracer.list_emptied(x);
            return Some(x);
        };
        *proposals += 1;
        metrics.proposal();
        // x is on y's reduced list, hence at least as good as y's current
        // holder — y trades up unconditionally.
        let z = ws.holds[y as usize];
        if z != NONE {
            debug_assert!(
                inst.prefers(y, x, z),
                "truncation keeps only better suitors"
            );
            ws.free.push(z);
            metrics.holder_swap();
            metrics.rejection();
        }
        ws.holds[y as usize] = x;
        tracer.proposal(x, y, (z != NONE).then_some(z));
        // The truncation "delete everything y ranks below x" is one
        // threshold store; its deletions stay implicit.
        let new_rank = inst.rank_of(y, x);
        debug_assert!(new_rank <= ws.thresh[y as usize], "thresholds only tighten");
        if ws.first_rank[y as usize] == NONE {
            ws.first_rank[y as usize] = new_rank;
        }
        if T::ENABLED {
            ws.removed.clear();
            ws.collect_p1_removed(inst, y, new_rank);
        }
        ws.thresh[y as usize] = new_rank;
        // Metric semantics: one "truncation" per threshold store (a
        // tightening of y's live bound), not per implied pair deletion —
        // the fast path never enumerates those.
        metrics.phase1_truncation();
        if T::ENABLED && !ws.removed.is_empty() {
            tracer.truncation(y, x, &ws.removed);
        }
    }
    debug_assert!(
        ws.holds.iter().all(|&h| h != NONE),
        "all participants hold a proposal when phase 1 succeeds"
    );
    None
}

/// Discover the rotation reachable from `start` into `ws.xs`/`ws.ys`,
/// leaving `ws.pos` fully cleared. Same walk as
/// [`crate::phase2::find_rotation`].
fn find_rotation(ws: &mut RoommatesWorkspace, start: u32) {
    debug_assert!(
        ws.len[start as usize] >= 2,
        "rotation seeds need a second preference"
    );
    ws.seq.clear();
    let mut a = start;
    let cycle_start = loop {
        let seen = ws.pos[a as usize];
        if seen != NONE {
            break seen as usize;
        }
        ws.pos[a as usize] = ws.seq.len() as u32;
        ws.seq.push(a);
        let b = ws
            .second(a)
            .expect("rotation path stays within length-2 lists");
        a = ws
            .last(b)
            .expect("b holds a proposal, so its list is non-empty");
    };
    ws.xs.clear();
    ws.xs.extend_from_slice(&ws.seq[cycle_start..]);
    ws.ys.clear();
    for i in cycle_start..ws.seq.len() {
        let x = ws.seq[i];
        ws.ys
            .push(ws.first(x).expect("rotation members hold a proposal"));
    }
    for &p in &ws.seq {
        ws.pos[p as usize] = NONE;
    }
}

/// Eliminate the rotation in `ws.xs`: gather the `(second(x_i), x_i)`
/// targets against pre-elimination state, then truncate each in cycle
/// order. Returns the first participant emptied by the eliminating
/// truncations, straight from the delete-time signal.
fn eliminate_rotation(ws: &mut RoommatesWorkspace) -> Option<u32> {
    // All second() lookups must reflect discovery-time state, before any
    // deletion of this round — hence the gather pass.
    let xs = std::mem::take(&mut ws.xs);
    ws.targets.clear();
    for &x in &xs {
        let y_next = ws.second(x).expect("rotation member still has a second");
        ws.targets.push((y_next, x));
    }
    ws.xs = xs;
    let mut culprit = NONE;
    let targets = std::mem::take(&mut ws.targets);
    for &(y, x) in &targets {
        ws.truncate_below(y, x, &mut culprit, false);
    }
    ws.targets = targets;
    (culprit != NONE).then_some(culprit)
}

/// The engine core, monomorphized per tracer, metrics sink, and span
/// sink.
pub(crate) fn run_core<R: RoommatesPrefs, T: Tracer, M: Metrics, S: SpanSink>(
    inst: &R,
    ws: &mut RoommatesWorkspace,
    policy: &RotationPolicy,
    tracer: &mut T,
    metrics: &mut M,
    spans: &mut S,
) -> RoommatesOutcome {
    let mut stats = SolveStats::default();
    let fresh = ws.reset(inst);
    metrics.workspace(fresh);

    spans.begin(span::IRVING_SOLVE, inst.n() as u64);
    spans.begin(span::IRVING_PHASE1, inst.n() as u64);
    let culprit = phase1(inst, ws, &mut stats.proposals, tracer, metrics);
    spans.end(span::IRVING_PHASE1);
    if let Some(culprit) = culprit {
        spans.end(span::IRVING_SOLVE);
        metrics.solve_done(false, stats.proposals);
        ws.footer = Some(crate::workspace::SolveFooter {
            n: inst.n(),
            stable: false,
            culprit,
            stats,
        });
        return RoommatesOutcome::NoStableMatching { culprit, stats };
    }

    // Collapse the implicit phase-1 deletions into the compact linked
    // arena phase 2 operates on.
    ws.materialize(inst);

    spans.begin(span::IRVING_PHASE2, inst.n() as u64);
    let mut cursors = SeedCursors::new();
    while let Some(start) = cursors.pick(&ws.len, policy) {
        find_rotation(ws, start);
        tracer.rotation(&ws.xs, &ws.ys);
        stats.rotations += 1;
        metrics.phase2_rotation();
        if let Some(culprit) = eliminate_rotation(ws) {
            tracer.list_emptied(culprit);
            spans.end(span::IRVING_PHASE2);
            spans.end(span::IRVING_SOLVE);
            metrics.solve_done(false, stats.proposals);
            ws.footer = Some(crate::workspace::SolveFooter {
                n: inst.n(),
                stable: false,
                culprit,
                stats,
            });
            return RoommatesOutcome::NoStableMatching { culprit, stats };
        }
    }
    spans.end(span::IRVING_PHASE2);
    spans.end(span::IRVING_SOLVE);
    metrics.solve_done(true, stats.proposals);

    // Every reduced list is a singleton: read off the matching.
    let n = inst.n();
    let mut partner = vec![0u32; n];
    for (p, slot) in partner.iter_mut().enumerate() {
        *slot = ws.first(p as u32).expect("singleton lists are non-empty");
    }
    ws.footer = Some(crate::workspace::SolveFooter {
        n,
        stable: true,
        culprit: NONE,
        stats,
    });
    RoommatesOutcome::Stable {
        matching: RoommatesMatching::new(partner),
        stats,
    }
}

impl RoommatesWorkspace {
    /// Solve through this workspace with the default deterministic seeding
    /// ([`RotationPolicy::FirstAvailable`]) — the zero-allocation fast
    /// path. Produces exactly the outcome, certificate, and counters of
    /// [`crate::solver::solve_reference`].
    pub fn solve<R: RoommatesPrefs>(&mut self, inst: &R) -> RoommatesOutcome {
        self.solve_with(inst, &RotationPolicy::FirstAvailable)
    }

    /// [`RoommatesWorkspace::solve`] with an explicit rotation-seeding
    /// policy (see [`crate::fair_smp`] for why the seed matters).
    pub fn solve_with<R: RoommatesPrefs>(
        &mut self,
        inst: &R,
        policy: &RotationPolicy,
    ) -> RoommatesOutcome {
        run_core(inst, self, policy, &mut NoTrace, &mut NoMetrics, &mut NoSpans)
    }

    /// [`RoommatesWorkspace::solve`] with metric hooks: proposals, holder
    /// swaps, phase-1 threshold tightenings, phase-2 rotations, workspace
    /// fresh/reuse, and the per-solve summary. Wall time is the front-end's
    /// job (engines stay clock-free). With [`kmatch_obs::NoMetrics`] this
    /// monomorphizes to exactly [`RoommatesWorkspace::solve`].
    pub fn solve_metered<R: RoommatesPrefs, M: Metrics>(
        &mut self,
        inst: &R,
        metrics: &mut M,
    ) -> RoommatesOutcome {
        self.solve_metered_with(inst, &RotationPolicy::FirstAvailable, metrics)
    }

    /// [`RoommatesWorkspace::solve_metered`] with an explicit
    /// rotation-seeding policy.
    pub fn solve_metered_with<R: RoommatesPrefs, M: Metrics>(
        &mut self,
        inst: &R,
        policy: &RotationPolicy,
        metrics: &mut M,
    ) -> RoommatesOutcome {
        run_core(inst, self, policy, &mut NoTrace, metrics, &mut NoSpans)
    }

    /// [`RoommatesWorkspace::solve_metered`] that additionally emits a
    /// span timeline: an `irving.solve` span enclosing `irving.phase1`
    /// and `irving.phase2` phase spans (see [`kmatch_trace::span`]).
    /// With [`kmatch_trace::NoSpans`] this monomorphizes to exactly
    /// [`RoommatesWorkspace::solve_metered`].
    pub fn solve_spanned<R: RoommatesPrefs, M: Metrics, S: SpanSink>(
        &mut self,
        inst: &R,
        metrics: &mut M,
        spans: &mut S,
    ) -> RoommatesOutcome {
        self.solve_spanned_with(inst, &RotationPolicy::FirstAvailable, metrics, spans)
    }

    /// [`RoommatesWorkspace::solve_spanned`] with an explicit
    /// rotation-seeding policy.
    pub fn solve_spanned_with<R: RoommatesPrefs, M: Metrics, S: SpanSink>(
        &mut self,
        inst: &R,
        policy: &RotationPolicy,
        metrics: &mut M,
        spans: &mut S,
    ) -> RoommatesOutcome {
        run_core(inst, self, policy, &mut NoTrace, metrics, spans)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::is_roommates_stable;
    use crate::solver::{solve_reference, solve_with_reference};
    use kmatch_prefs::gen::paper::{
        fig2_deadlock_smp, no_stable_roommates_4, section3b_left, section3b_right,
    };
    use kmatch_prefs::gen::uniform::{uniform_bipartite, uniform_roommates};
    use kmatch_prefs::RoommatesInstance;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn assert_agrees(inst: &RoommatesInstance, ws: &mut RoommatesWorkspace) {
        let fast = ws.solve(inst);
        let reference = solve_reference(inst);
        assert_eq!(fast.stats(), reference.stats());
        match (&fast, &reference) {
            (
                RoommatesOutcome::Stable { matching: a, .. },
                RoommatesOutcome::Stable { matching: b, .. },
            ) => assert_eq!(a, b),
            (
                RoommatesOutcome::NoStableMatching { culprit: a, .. },
                RoommatesOutcome::NoStableMatching { culprit: b, .. },
            ) => assert_eq!(a, b),
            _ => panic!("fast path and reference disagree on existence"),
        }
    }

    #[test]
    fn paper_instances_agree_with_reference() {
        let mut ws = RoommatesWorkspace::new();
        assert_agrees(&section3b_left(), &mut ws);
        assert_agrees(&section3b_right(), &mut ws);
        assert_agrees(&no_stable_roommates_4(), &mut ws);
    }

    #[test]
    fn paper_left_instance_solves_stably() {
        let inst = section3b_left();
        let out = RoommatesWorkspace::new().solve(&inst);
        let m = out.matching().expect("left instance is solvable");
        assert!(is_roommates_stable(&inst, m));
    }

    #[test]
    fn random_instances_agree_with_reference() {
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let mut ws = RoommatesWorkspace::new();
        for _ in 0..60 {
            // Even and odd sizes; odd instances are never solvable.
            for n in [7usize, 10, 16] {
                assert_agrees(&uniform_roommates(n, &mut rng), &mut ws);
            }
        }
    }

    #[test]
    fn sided_policies_agree_with_reference() {
        let mut rng = ChaCha8Rng::seed_from_u64(29);
        let mut ws = RoommatesWorkspace::new();
        for _ in 0..40 {
            let smp = uniform_bipartite(9, &mut rng);
            let rm = RoommatesInstance::from_bipartite(&smp);
            let side: Vec<bool> = (0..18).map(|p| p >= 9).collect();
            for policy in [
                RotationPolicy::AlternateSides { side: side.clone() },
                RotationPolicy::PreferSide {
                    side: side.clone(),
                    seed_from: false,
                },
                RotationPolicy::PreferSide {
                    side: side.clone(),
                    seed_from: true,
                },
            ] {
                let fast = ws.solve_with(&rm, &policy);
                let reference = solve_with_reference(&rm, policy);
                assert_eq!(
                    fast.matching(),
                    reference.matching(),
                    "policy outcomes must agree"
                );
                assert_eq!(fast.stats(), reference.stats());
            }
        }
    }

    #[test]
    fn traced_engine_matches_reference_events() {
        use crate::solver::{solve_with_logged, solve_with_logged_reference};
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        for n in [4usize, 8, 12, 13] {
            let inst = uniform_roommates(n, &mut rng);
            let mut fast_events = Vec::new();
            let mut ref_events = Vec::new();
            let fast = solve_with_logged(&inst, RotationPolicy::FirstAvailable, &mut |e| {
                fast_events.push(e)
            });
            let reference =
                solve_with_logged_reference(&inst, RotationPolicy::FirstAvailable, &mut |e| {
                    ref_events.push(e)
                });
            assert_eq!(fast.stats(), reference.stats());
            assert_eq!(fast_events, ref_events, "n = {n}");
        }
    }

    #[test]
    fn deadlock_seeding_still_orients_outcomes() {
        // The monotone cursors must preserve the paper's Fig. 2 seeding
        // behaviour end to end.
        let rm = RoommatesInstance::from_bipartite(&fig2_deadlock_smp());
        let side = vec![false, false, true, true];
        let mut ws = RoommatesWorkspace::new();
        let man_seeded = ws.solve_with(
            &rm,
            &RotationPolicy::PreferSide {
                side: side.clone(),
                seed_from: false,
            },
        );
        // Men fall to their second choices: woman-optimal (m,w'), (m',w).
        let m = man_seeded.matching().unwrap();
        assert_eq!(m.partner(0), 3);
        assert_eq!(m.partner(1), 2);
        let woman_seeded = ws.solve_with(
            &rm,
            &RotationPolicy::PreferSide {
                side,
                seed_from: true,
            },
        );
        let m = woman_seeded.matching().unwrap();
        assert_eq!(m.partner(0), 2);
        assert_eq!(m.partner(1), 3);
    }

    #[test]
    fn metered_matches_plain_and_counts_hold() {
        use kmatch_obs::SolverMetrics;
        let mut rng = ChaCha8Rng::seed_from_u64(37);
        let mut ws = RoommatesWorkspace::new();
        let mut m = SolverMetrics::new();
        let (mut solves, mut solvable) = (0u64, 0u64);
        let (mut proposals, mut rotations) = (0u64, 0u64);
        for _ in 0..20 {
            for n in [6usize, 9, 12] {
                let inst = uniform_roommates(n, &mut rng);
                let plain = ws.solve(&inst);
                let metered = ws.solve_metered(&inst, &mut m);
                assert_eq!(plain.matching(), metered.matching());
                assert_eq!(plain.stats(), metered.stats());
                solves += 1;
                solvable += u64::from(plain.matching().is_some());
                proposals += plain.stats().proposals;
                rotations += u64::from(plain.stats().rotations);
            }
        }
        assert_eq!(m.solves, solves);
        assert_eq!(m.solvable, solvable);
        assert_eq!(m.unsolvable, solves - solvable);
        assert_eq!(m.proposals, proposals);
        assert_eq!(m.phase2_rotations, rotations);
        // Every phase-1 proposal stores a threshold.
        assert_eq!(m.phase1_truncations, proposals);
        assert_eq!(m.proposals_per_solve.count(), solves);
    }

    #[test]
    fn empty_lists_detected_immediately() {
        let inst = RoommatesInstance::from_lists(vec![vec![], vec![]]).unwrap();
        let out = RoommatesWorkspace::new().solve(&inst);
        assert!(matches!(
            out,
            RoommatesOutcome::NoStableMatching { culprit: 0, .. }
        ));
    }
}
