//! Warm-start re-solve for the Irving engine.
//!
//! Unlike deferred acceptance, Irving's algorithm has no cheap "resume
//! from a partial execution" story: phase-1 thresholds only ever
//! *tighten*, so a preference edit that would loosen one invalidates work
//! the previous run already committed to. The warm path therefore answers
//! a narrower question exactly: **can the edit change the execution at
//! all?**
//!
//! The engine probes participant `p`'s row in exactly two ways: `p`'s own
//! proposal walk, which never advances past the final `scan[p]` cursor,
//! and other participants testing `rank_p(x) ≤ thresh[p]`. Before `p`
//! holds its first proposal `thresh[p]` is unbounded, so those tests are
//! rank-independent; from the moment `p` first holds a proposal at rank
//! `first_rank[p]`, the threshold only tightens, so a test's outcome
//! depends solely on whether `x` sits at rank `≤ first_rank[p]` — and on
//! the exact rank when it does. A rewrite of `p`'s row that keeps
//! positions `0..=max(scan[p], first_rank[p])` byte-identical therefore
//! leaves **every probe of the previous run unchanged**: a cold solve of
//! the new instance replays the identical execution — proposals,
//! truncations, rotations, and all — so the previous outcome *is* the new
//! outcome, and [`RoommatesWorkspace::resolve_delta`] returns it in O(n)
//! without touching the engine. (Note that the *final* threshold is not a
//! sound bound: while being rejected, a proposer walks through and
//! reorders-sensitive territory far below it.)
//!
//! Everything past that prefix is the row's **dead zone**; edits confined
//! to it are free. Any edit that reaches the live prefix — equivalently,
//! any edit that could loosen a phase-1 threshold — falls back to a cold
//! solve, as does a workspace that does not hold a finished execution of
//! a same-sized instance.

use kmatch_obs::{Metrics, NoMetrics};
use kmatch_prefs::RoommatesInstance;
use kmatch_trace::{reason, span, NoSpans, SpanSink};

use crate::matching::RoommatesMatching;
use crate::solver::RoommatesOutcome;
use crate::workspace::{RoommatesWorkspace, NONE};

/// A recorded single-row rewrite of a [`RoommatesInstance`]: participant
/// [`participant`](RoommatesRowDelta::participant)'s preference row was
/// replaced (e.g. via [`RoommatesInstance::set_row`]), and
/// [`old_row`](RoommatesRowDelta::old_row) is the row as it read *before*
/// the rewrite. The warm path needs the old row to prove the edit stayed
/// inside the dead zone the previous execution never depended on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoommatesRowDelta {
    /// Whose row was rewritten.
    pub participant: u32,
    /// The full pre-rewrite row (same acceptable set as the new row).
    pub old_row: Vec<u32>,
}

impl RoommatesWorkspace {
    /// Warm-start re-solve after in-place preference edits.
    ///
    /// `inst` must already reflect `deltas`, and this workspace must hold
    /// the finished execution of a previous solve of the *pre-delta*
    /// version of the same instance. When every rewritten row is
    /// byte-identical to its old row across the live prefix
    /// (`0..=max(scan[p], first_rank[p])` — everything the previous
    /// execution ever probed), the previous outcome is provably the
    /// outcome of the new instance and is replayed in O(n); any other
    /// edit degrades to a cold [`RoommatesWorkspace::solve`].
    pub fn resolve_delta(
        &mut self,
        inst: &RoommatesInstance,
        deltas: &[RoommatesRowDelta],
    ) -> RoommatesOutcome {
        self.resolve_delta_metered(inst, deltas, &mut NoMetrics)
    }

    /// [`RoommatesWorkspace::resolve_delta`] with metric hooks: records
    /// [`Metrics::warm_resolve`] on a replay and [`Metrics::warm_fallback`]
    /// when it degrades to a cold solve.
    pub fn resolve_delta_metered<M: Metrics>(
        &mut self,
        inst: &RoommatesInstance,
        deltas: &[RoommatesRowDelta],
        metrics: &mut M,
    ) -> RoommatesOutcome {
        self.resolve_delta_spanned(inst, deltas, metrics, &mut NoSpans)
    }

    /// [`RoommatesWorkspace::resolve_delta_metered`] that additionally
    /// emits a span timeline: an `irving.warm.resolve` instant on a
    /// replay, or an `irving.warm.fallback` instant carrying a
    /// [`kmatch_trace::reason`] code followed by the cold solve's
    /// `irving.solve`/`irving.phase1`/`irving.phase2` spans.
    pub fn resolve_delta_spanned<M: Metrics, S: SpanSink>(
        &mut self,
        inst: &RoommatesInstance,
        deltas: &[RoommatesRowDelta],
        metrics: &mut M,
        spans: &mut S,
    ) -> RoommatesOutcome {
        if let Some(why) = self.warm_miss_reason(inst, deltas) {
            metrics.warm_fallback();
            spans.instant(span::IRVING_WARM_FALLBACK, why);
            return self.solve_spanned(inst, metrics, spans);
        }
        let footer = self.footer.expect("warm_miss_reason checked the footer");
        spans.instant(span::IRVING_WARM_RESOLVE, 0);
        metrics.workspace(false);
        metrics.warm_resolve(0);
        metrics.solve_done(footer.stable, 0);
        if footer.stable {
            // Phase 2 left every reduced list a singleton; the arena heads
            // still spell out the matching.
            let n = inst.n();
            let mut partner = vec![0u32; n];
            for (p, slot) in partner.iter_mut().enumerate() {
                *slot = self.first(p as u32).expect("stable footer ⇒ singletons");
            }
            RoommatesOutcome::Stable {
                matching: RoommatesMatching::new(partner),
                stats: footer.stats,
            }
        } else {
            RoommatesOutcome::NoStableMatching {
                culprit: footer.culprit,
                stats: footer.stats,
            }
        }
    }

    /// Number of leading positions of `p`'s row the previous execution
    /// depended on: everything up to the proposal-walk cursor and the
    /// loosest threshold the row was ever probed against. [`NONE`] in
    /// `first_rank` (never held a proposal) pins the whole row.
    pub(crate) fn live_prefix(&self, p: usize, row_len: usize) -> usize {
        let fr = self.first_rank[p];
        if fr == NONE {
            return row_len;
        }
        (self.scan[p].max(fr) as usize + 1).min(row_len)
    }

    /// The warm criterion: a usable footer, matching size, and every
    /// delta confined to the dead zone of its row. `None` means warm;
    /// otherwise the [`kmatch_trace::reason`] code explaining the miss.
    fn warm_miss_reason(
        &self,
        inst: &RoommatesInstance,
        deltas: &[RoommatesRowDelta],
    ) -> Option<u64> {
        let Some(footer) = self.footer else {
            return Some(reason::NO_FOOTER);
        };
        if footer.n != inst.n() {
            return Some(reason::SIZE_MISMATCH);
        }
        let all_dead_zone = deltas.iter().all(|d| {
            let p = d.participant as usize;
            if p >= footer.n {
                return false;
            }
            let new_row = inst.list(d.participant);
            if new_row.len() != d.old_row.len() {
                return false;
            }
            let live = self.live_prefix(p, new_row.len());
            new_row[..live] == d.old_row[..live]
        });
        (!all_dead_zone).then_some(reason::PREFIX_MISS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::is_roommates_stable;
    use crate::solver::solve;
    use kmatch_obs::SolverMetrics;
    use kmatch_prefs::gen::paper::{section3b_left, section3b_right};
    use kmatch_prefs::gen::uniform::uniform_roommates;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn assert_same_outcome(a: &RoommatesOutcome, b: &RoommatesOutcome) {
        match (a, b) {
            (
                RoommatesOutcome::Stable { matching: x, .. },
                RoommatesOutcome::Stable { matching: y, .. },
            ) => assert_eq!(x, y),
            (
                RoommatesOutcome::NoStableMatching { culprit: x, .. },
                RoommatesOutcome::NoStableMatching { culprit: y, .. },
            ) => assert_eq!(x, y),
            _ => panic!("stability verdicts disagree"),
        }
    }

    /// Reverse the dead-zone suffix of `p`'s row; returns the delta, or
    /// `None` when the dead zone has fewer than two entries.
    fn dead_zone_delta(
        inst: &mut RoommatesInstance,
        ws: &RoommatesWorkspace,
        p: u32,
    ) -> Option<RoommatesRowDelta> {
        let old_row = inst.list(p).to_vec();
        let live = ws.live_prefix(p as usize, old_row.len());
        if old_row.len() - live < 2 {
            return None;
        }
        let mut new_row = old_row.clone();
        new_row[live..].reverse();
        inst.set_row(p, &new_row).unwrap();
        Some(RoommatesRowDelta {
            participant: p,
            old_row,
        })
    }

    #[test]
    fn dead_zone_rewrite_replays_without_solving() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let mut hits = 0;
        for _ in 0..60 {
            let mut inst = uniform_roommates(12, &mut rng);
            let mut ws = RoommatesWorkspace::new();
            ws.solve(&inst);
            let p = rng.gen_range(0..12u32);
            let Some(delta) = dead_zone_delta(&mut inst, &ws, p) else {
                continue;
            };
            let mut m = SolverMetrics::new();
            let warm = ws.resolve_delta_metered(&inst, std::slice::from_ref(&delta), &mut m);
            assert_eq!(m.warm_solves, 1, "dead-zone edit must replay");
            assert_eq!(m.warm_fallbacks, 0);
            let cold = solve(&inst);
            assert_same_outcome(&warm, &cold);
            if let Some(matching) = warm.matching() {
                assert!(is_roommates_stable(&inst, matching));
                hits += 1;
            }
        }
        assert!(hits > 5, "expected several solvable warm replays");
    }

    #[test]
    fn live_prefix_edit_falls_back_to_cold() {
        let mut rng = ChaCha8Rng::seed_from_u64(22);
        let mut fallbacks = 0;
        for _ in 0..20 {
            let mut inst = uniform_roommates(10, &mut rng);
            let mut ws = RoommatesWorkspace::new();
            ws.solve(&inst);
            // Reversing the whole row crosses the live prefix whenever the
            // row's order matters at all.
            let p = rng.gen_range(0..10u32);
            let old_row = inst.list(p).to_vec();
            let mut new_row = old_row.clone();
            new_row.reverse();
            if new_row == old_row {
                continue;
            }
            inst.set_row(p, &new_row).unwrap();
            let delta = RoommatesRowDelta {
                participant: p,
                old_row,
            };
            let mut m = SolverMetrics::new();
            let warm = ws.resolve_delta_metered(&inst, std::slice::from_ref(&delta), &mut m);
            fallbacks += m.warm_fallbacks;
            assert_same_outcome(&warm, &solve(&inst));
        }
        assert!(fallbacks > 10, "whole-row reversals should mostly fall back");
    }

    #[test]
    fn empty_delta_list_replays_any_finished_outcome() {
        // Solvable: same matching and counters come back without a solve.
        let inst = section3b_left();
        let mut ws = RoommatesWorkspace::new();
        let cold = ws.solve(&inst);
        let mut m = SolverMetrics::new();
        let warm = ws.resolve_delta_metered(&inst, &[], &mut m);
        assert_eq!(m.warm_solves, 1);
        assert_eq!(warm.matching(), cold.matching());
        assert_eq!(warm.stats(), cold.stats());
        // Unsolvable (the paper's right-hand lists fail in phase 1): the
        // recorded certificate is replayed verbatim.
        let inst = section3b_right();
        let first = ws.solve(&inst);
        assert!(!first.is_stable());
        let mut m = SolverMetrics::new();
        let again = ws.resolve_delta_metered(&inst, &[], &mut m);
        assert_eq!(m.warm_solves, 1);
        assert_same_outcome(&again, &first);
    }

    #[test]
    fn fresh_workspace_always_falls_back() {
        let inst = section3b_left();
        let mut ws = RoommatesWorkspace::new();
        let mut m = SolverMetrics::new();
        let out = ws.resolve_delta_metered(&inst, &[], &mut m);
        assert_eq!(m.warm_fallbacks, 1);
        assert!(out.is_stable());
    }

    #[test]
    fn random_rewrites_always_agree_with_cold() {
        // Differential sweep across both the replay and fallback paths.
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        for _ in 0..80 {
            let n = 8;
            let mut inst = uniform_roommates(n, &mut rng);
            let mut ws = RoommatesWorkspace::new();
            ws.solve(&inst);
            let p = rng.gen_range(0..n as u32);
            let old_row = inst.list(p).to_vec();
            let mut new_row = old_row.clone();
            // Random transposition somewhere in the row.
            let i = rng.gen_range(0..new_row.len());
            let j = rng.gen_range(0..new_row.len());
            new_row.swap(i, j);
            inst.set_row(p, &new_row).unwrap();
            let delta = RoommatesRowDelta {
                participant: p,
                old_row,
            };
            let warm = ws.resolve_delta(&inst, std::slice::from_ref(&delta));
            assert_same_outcome(&warm, &solve(&inst));
        }
    }
}
