//! Rotation-seeding policies for phase 2.
//!
//! Which participant seeds the next rotation search determines *which*
//! stable matching the solver returns (when several exist). The paper ends
//! §III-B with exactly this observation: "By alternating man-oriented and
//! woman-oriented loop breaking in phase two, we can obtain a procedural
//! fairness among men and women."

/// Strategy choosing the participant that seeds the next rotation search.
#[derive(Debug, Clone)]
pub enum RotationPolicy {
    /// Always the lowest-indexed participant with a reduced list of length
    /// ≥ 2. Deterministic default.
    FirstAvailable,
    /// Participants carry a binary side label; rotation seeds alternate
    /// between sides (starting with side `false`), falling back to the
    /// other side when the preferred one has no candidate. Used for the
    /// paper's procedurally-fair SMP.
    AlternateSides {
        /// `side[p]` — which side participant `p` belongs to.
        side: Vec<bool>,
    },
    /// Seed only from the given side when possible. Seeding rotations from
    /// one side *worsens* that side's outcomes (they move to their second
    /// choices), producing the matching optimal for the *other* side on
    /// bipartite reductions.
    PreferSide {
        /// `side[p]` — which side participant `p` belongs to.
        side: Vec<bool>,
        /// The side to seed rotations from.
        seed_from: bool,
    },
}

/// Mutable seeding state carried across rotation eliminations.
#[derive(Debug, Clone)]
pub struct SeedState {
    policy: RotationPolicy,
    /// Parity for [`RotationPolicy::AlternateSides`].
    next_side: bool,
}

impl SeedState {
    /// Start executing `policy`.
    pub fn new(policy: RotationPolicy) -> Self {
        SeedState {
            policy,
            next_side: false,
        }
    }

    /// Choose a seed among `candidates` (participants whose reduced list
    /// has length ≥ 2, ascending order). Returns `None` iff `candidates`
    /// is empty.
    pub fn pick(&mut self, candidates: &[u32]) -> Option<u32> {
        if candidates.is_empty() {
            return None;
        }
        match &self.policy {
            RotationPolicy::FirstAvailable => Some(candidates[0]),
            RotationPolicy::AlternateSides { side } => {
                let want = self.next_side;
                self.next_side = !self.next_side;
                candidates
                    .iter()
                    .copied()
                    .find(|&p| side[p as usize] == want)
                    .or(Some(candidates[0]))
            }
            RotationPolicy::PreferSide { side, seed_from } => candidates
                .iter()
                .copied()
                .find(|&p| side[p as usize] == *seed_from)
                .or(Some(candidates[0])),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_available_picks_lowest() {
        let mut s = SeedState::new(RotationPolicy::FirstAvailable);
        assert_eq!(s.pick(&[3, 5, 9]), Some(3));
        assert_eq!(s.pick(&[]), None);
    }

    #[test]
    fn alternate_sides_toggles() {
        // Participants 0,1 on side false; 2,3 on side true.
        let side = vec![false, false, true, true];
        let mut s = SeedState::new(RotationPolicy::AlternateSides { side });
        assert_eq!(s.pick(&[0, 1, 2, 3]), Some(0), "first pick from side false");
        assert_eq!(s.pick(&[0, 1, 2, 3]), Some(2), "second pick from side true");
        assert_eq!(s.pick(&[0, 1, 2, 3]), Some(0), "third pick back to false");
    }

    #[test]
    fn alternate_falls_back_when_side_empty() {
        let side = vec![false, false, true, true];
        let mut s = SeedState::new(RotationPolicy::AlternateSides { side });
        s.pick(&[0]); // consumes the `false` turn
        assert_eq!(s.pick(&[0, 1]), Some(0), "wants true, falls back to first");
    }

    #[test]
    fn prefer_side_sticks() {
        let side = vec![false, true, false, true];
        let mut s = SeedState::new(RotationPolicy::PreferSide {
            side,
            seed_from: true,
        });
        assert_eq!(s.pick(&[0, 1, 2, 3]), Some(1));
        assert_eq!(
            s.pick(&[0, 2]),
            Some(0),
            "fallback when preferred side empty"
        );
    }
}
