//! Phase 1 of Irving's algorithm: the proposal sequence.
//!
//! Everyone proposes down their list. When `x` proposes to the first entry
//! `y` of its (reduced) list, `y` *always* holds the proposal: the
//! truncation invariant guarantees `x` is better than whatever `y` held,
//! because holding a proposal from `z` immediately deletes everything worse
//! than `z` from `y`'s list — the paper's pruning rule, "if m receives a
//! proposal from w, he will remove all persons, u, ranked lower than w",
//! with the **bidirectional removal rule** ("if w removes m from her list,
//! it also means m removes w from his list"). The displaced previous holder
//! resumes proposing.
//!
//! Proposals are *unidirectional*: `p` may hold a proposal from one person
//! while proposing to a different one ("a person can hold a proposal from
//! another person, yet can make his own proposal to the third person",
//! §III-B).
//!
//! Phase 1 ends with every participant semi-engaged (the relation
//! `first(x) = y ⟺ holder(y) = x`), or with some list emptied — in which
//! case no stable matching exists.

use crate::active::ActiveTable;
use crate::trace::RoommatesEvent;

/// Outcome of phase 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Phase1Result {
    /// Every participant holds a proposal; reduced lists are non-empty.
    Reduced {
        /// `holder[p]` = the participant whose proposal `p` holds.
        holder: Vec<u32>,
    },
    /// Some participant ran out of list — no stable matching exists.
    NoStableMatching {
        /// The participant whose reduced list emptied.
        culprit: u32,
    },
}

const NONE: u32 = u32::MAX;

/// Run phase 1 on the table, mutating it into the phase-1 reduced lists.
/// `proposals` is incremented once per proposal made.
pub fn phase1(table: &mut ActiveTable<'_>, proposals: &mut u64) -> Phase1Result {
    phase1_logged(table, proposals, &mut |_| {})
}

/// [`phase1`] with an event callback recording the paper-style trace.
pub fn phase1_logged(
    table: &mut ActiveTable<'_>,
    proposals: &mut u64,
    log: &mut dyn FnMut(RoommatesEvent),
) -> Phase1Result {
    let n = table.n();
    // holds[y]: proposer whose proposal y currently holds.
    let mut holds = vec![NONE; n];
    let mut free: Vec<u32> = (0..n as u32).rev().collect();
    while let Some(x) = free.pop() {
        let Some(y) = table.first(x) else {
            log(RoommatesEvent::ListEmptied { who: x });
            return Phase1Result::NoStableMatching { culprit: x };
        };
        *proposals += 1;
        // x is on y's reduced list, hence at least as good as y's current
        // holder — y trades up unconditionally.
        let z = holds[y as usize];
        if z != NONE {
            debug_assert!(
                table.instance().prefers(y, x, z),
                "truncation keeps only better suitors"
            );
            free.push(z);
        }
        holds[y as usize] = x;
        log(RoommatesEvent::Proposal {
            from: x,
            to: y,
            displaced: (z != NONE).then_some(z),
        });
        let removed = table.truncate_below(y, x);
        if !removed.is_empty() {
            log(RoommatesEvent::Truncation {
                holder: y,
                kept: x,
                removed,
            });
        }
    }
    debug_assert!(
        holds.iter().all(|&h| h != NONE),
        "all participants hold a proposal when phase 1 succeeds"
    );
    Phase1Result::Reduced { holder: holds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::active::ActiveTable;
    use kmatch_prefs::gen::paper::{fig2_deadlock_smp, section3b_left};
    use kmatch_prefs::RoommatesInstance;

    #[test]
    fn deadlock_instance_reduces_to_full_lists() {
        // Paper §III-B: after phase one the four lists are untouched —
        // the circular waiting of Fig. 2.
        let inst = RoommatesInstance::from_bipartite(&fig2_deadlock_smp());
        let mut table = ActiveTable::new(&inst);
        let mut proposals = 0;
        let result = phase1(&mut table, &mut proposals);
        assert!(matches!(result, Phase1Result::Reduced { .. }));
        assert_eq!(table.reduced_list(0), vec![2, 3]); // m : w w'
        assert_eq!(table.reduced_list(1), vec![3, 2]); // m': w' w
        assert_eq!(table.reduced_list(2), vec![1, 0]); // w : m' m
        assert_eq!(table.reduced_list(3), vec![0, 1]); // w': m m'
        assert_eq!(proposals, 4, "one successful proposal each");
    }

    #[test]
    fn holder_invariant_first_last() {
        // Semi-engagement after phase 1: holder(y) = x  implies
        // last(y) = x and first(x) = y.
        let inst = section3b_left();
        let mut table = ActiveTable::new(&inst);
        let mut proposals = 0;
        let Phase1Result::Reduced { holder } = phase1(&mut table, &mut proposals) else {
            panic!("left instance has a stable matching");
        };
        for y in 0..6u32 {
            let x = holder[y as usize];
            assert_eq!(
                table.last(y),
                Some(x),
                "last({y}) must be its held proposer"
            );
            assert_eq!(
                table.first(x),
                Some(y),
                "first({x}) must be where it proposed"
            );
        }
        assert!(proposals >= 6, "everyone proposed at least once");
    }

    #[test]
    fn empty_list_detected() {
        let inst = RoommatesInstance::from_lists(vec![vec![], vec![]]).unwrap();
        let mut table = ActiveTable::new(&inst);
        let mut proposals = 0;
        let result = phase1(&mut table, &mut proposals);
        assert!(matches!(result, Phase1Result::NoStableMatching { .. }));
    }

    #[test]
    fn displaced_holder_resumes() {
        // 4 participants, complete lists crafted so participant 2's
        // proposal to 0 displaces participant 1.
        // 0: 2 > 1 > 3 ; 1: 0 > 2 > 3 ; 2: 0 > 3 > 1 ; 3: 0 > 1 > 2.
        let inst = RoommatesInstance::from_lists(vec![
            vec![2, 1, 3],
            vec![0, 2, 3],
            vec![0, 3, 1],
            vec![0, 1, 2],
        ])
        .unwrap();
        let mut table = ActiveTable::new(&inst);
        let mut proposals = 0;
        let result = phase1(&mut table, &mut proposals);
        // 0→2 (holds), 1→0 (holds, truncate below 1: deletes 3 from 0's list),
        // 2→0: 0 prefers 2 over 1 → displaces 1; truncate below 2 empties
        // the rest of 0's list; 1 resumes → 1→2 (holds; 2 truncates below 1:
        // nothing after 1)… then 3 proposes: 0 gone (deleted), 1 …
        assert!(proposals > 4, "displacement forces extra proposals");
        match result {
            Phase1Result::Reduced { holder } => {
                // 0 must end up holding 2's proposal.
                assert_eq!(holder[0], 2);
            }
            Phase1Result::NoStableMatching { .. } => {
                // Also acceptable if lists empty — but for this instance a
                // stable matching exists, so reaching here is a bug.
                panic!("instance has stable matching {{(0,2),(1,3)}}… phase 1 must reduce");
            }
        }
    }
}
