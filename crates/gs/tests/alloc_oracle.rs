//! Memory proof for the implicit-oracle substrate: a GS solve at n = 10⁴
//! driven by a [`RandomPermOracle`] must allocate O(n) bytes — workspace
//! arrays plus the returned matching — never the O(n²) a materialized
//! preference table would cost. Measured with the shared byte-counting
//! [`kmatch_testsupport::CountingAlloc`]; the counter is thread-local so
//! the harness's other threads cannot pollute it.

use kmatch_gs::GsWorkspace;
use kmatch_prefs::RandomPermOracle;
use kmatch_testsupport::{bytes_in as bytes_allocated_in, CountingAlloc};

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

#[test]
fn random_oracle_solve_allocates_linear_not_quadratic() {
    const N: usize = 10_000;
    let oracle = RandomPermOracle::new(N, 5);
    let bytes = bytes_allocated_in(|| {
        let mut ws = GsWorkspace::new();
        std::hint::black_box(ws.solve(&oracle));
    });
    // Workspace state is a handful of n-sized arrays (best: 8n, next: 4n,
    // free stacks: ~8n) plus the matching's two 4n partner arrays, with
    // Vec growth doubling on top. 200 bytes/agent is a loose linear roof;
    // a materialized table would need n²-ish bytes, 10⁴ times this roof.
    let linear_roof = 200 * N as u64;
    assert!(
        bytes <= linear_roof,
        "oracle-driven solve allocated {bytes} bytes at n = {N} \
         (expected <= {linear_roof}, i.e. O(n) not O(n²))"
    );
    // And the bound is meaningfully below quadratic.
    assert!(linear_roof < (N * N) as u64 / 10);
}

#[test]
fn oracle_construction_is_constant_size() {
    // The Feistel oracle is a few words of state regardless of n.
    let bytes = bytes_allocated_in(|| {
        std::hint::black_box(RandomPermOracle::new(1_000_000, 3));
    });
    assert!(
        bytes < 1024,
        "RandomPermOracle::new allocated {bytes} bytes — it should be O(1)"
    );
}

#[test]
fn byte_counter_is_live() {
    // Sanity: the harness actually observes allocation sizes.
    let bytes = bytes_allocated_in(|| {
        std::hint::black_box(vec![0u8; 4096]);
    });
    assert!(bytes >= 4096);
}
