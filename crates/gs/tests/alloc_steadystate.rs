//! Zero-steady-state-allocation guarantee for the GS workspace fast path,
//! with and without metrics.
//!
//! After a warm-up solve grows the workspace buffers, repeat solves of
//! same-shaped instances allocate only the two partner arrays owned by
//! each returned matching — and the metered path with a reused
//! `SolverMetrics` must allocate *exactly as much* as the `NoMetrics`
//! path: counters are plain `u64` fields and the histograms are
//! fixed-size inline arrays, so observing a solve touches no heap.
//!
//! Measured with the shared [`kmatch_testsupport::CountingAlloc`]; the
//! counters are thread-local so the test harness's other threads cannot
//! pollute them.

use kmatch_gs::GsWorkspace;
use kmatch_obs::SolverMetrics;
use kmatch_prefs::gen::uniform::uniform_bipartite;
use kmatch_prefs::CsrPrefs;
use kmatch_testsupport::{allocations_in, CountingAlloc};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// The matching returned by a GS solve owns exactly two partner arrays.
const ALLOCS_PER_SOLVE: u64 = 2;

#[test]
fn steady_state_allocates_only_the_matching() {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let inst = uniform_bipartite(64, &mut rng);
    let mut ws = GsWorkspace::new();
    ws.solve(&inst);
    let reps = 50u64;
    let allocs = allocations_in(|| {
        for _ in 0..reps {
            std::hint::black_box(ws.solve(&inst));
        }
    });
    assert!(
        allocs <= reps * ALLOCS_PER_SOLVE,
        "expected at most the matching's two partner arrays per solve, \
         saw {allocs} allocations over {reps} solves"
    );
}

#[test]
fn metered_steady_state_allocates_like_plain() {
    let mut rng = ChaCha8Rng::seed_from_u64(12);
    let inst = uniform_bipartite(64, &mut rng);
    let csr = CsrPrefs::from_prefs(&inst);
    let mut ws = GsWorkspace::new();
    ws.solve(&csr);
    let reps = 50u64;
    let plain = allocations_in(|| {
        for _ in 0..reps {
            std::hint::black_box(ws.solve(&csr));
        }
    });
    let mut metrics = SolverMetrics::new();
    let metered = allocations_in(|| {
        for _ in 0..reps {
            std::hint::black_box(ws.solve_metered(&csr, &mut metrics));
        }
    });
    assert_eq!(
        metered, plain,
        "SolverMetrics must add zero allocations over the NoMetrics path"
    );
    assert_eq!(metrics.solves, reps);
    assert_eq!(metrics.workspace_reused, reps);
    assert_eq!(metrics.workspace_fresh, 0);
}

#[test]
fn nospans_steady_state_allocates_like_plain() {
    use kmatch_obs::NoMetrics;
    use kmatch_trace::NoSpans;
    let mut rng = ChaCha8Rng::seed_from_u64(13);
    let inst = uniform_bipartite(64, &mut rng);
    let csr = CsrPrefs::from_prefs(&inst);
    let mut ws = GsWorkspace::new();
    // Warm both entry points past any one-time lazy allocation.
    ws.solve(&csr);
    ws.solve_spanned(&csr, &mut NoMetrics, &mut NoSpans);
    let reps = 50u64;
    let plain = allocations_in(|| {
        for _ in 0..reps {
            std::hint::black_box(ws.solve(&csr));
        }
    });
    let spanned = allocations_in(|| {
        for _ in 0..reps {
            std::hint::black_box(ws.solve_spanned(&csr, &mut NoMetrics, &mut NoSpans));
        }
    });
    assert!(
        spanned <= plain && spanned <= reps * ALLOCS_PER_SOLVE,
        "the NoSpans sink must add zero allocations over the plain path \
         (plain {plain}, spanned {spanned})"
    );
}

#[test]
fn live_registry_attached_adds_no_hot_path_allocations() {
    // The scrape layer's contract: with a `LiveRegistry` attached via
    // `BatchRegistry::with_live`, the solve hot loop still accumulates
    // into a plain thread-private shard — the atomics are touched only
    // by the absorb at the chunk boundary, and even that absorb is
    // allocation-free (fixed-size atomic arrays, no heap).
    use std::sync::Arc;

    use kmatch_obs::{BatchRegistry, LiveRegistry};

    let mut rng = ChaCha8Rng::seed_from_u64(14);
    let inst = uniform_bipartite(64, &mut rng);
    let csr = CsrPrefs::from_prefs(&inst);
    let mut ws = GsWorkspace::new();
    ws.solve(&csr);
    let reps = 50u64;
    let plain = allocations_in(|| {
        for _ in 0..reps {
            std::hint::black_box(ws.solve(&csr));
        }
    });

    let live = Arc::new(LiveRegistry::new());
    let registry = BatchRegistry::with_live(Arc::clone(&live));
    let mut shard = SolverMetrics::new();
    let mirrored = allocations_in(|| {
        for _ in 0..reps {
            std::hint::black_box(ws.solve_metered(&csr, &mut shard));
        }
        registry.absorb(std::mem::take(&mut shard));
    });
    assert!(
        mirrored <= plain && mirrored <= reps * ALLOCS_PER_SOLVE,
        "an attached LiveRegistry must add zero allocations: \
         hot loop on a plain shard, chunk-boundary absorb on fixed atomics \
         (plain {plain}, mirrored {mirrored})"
    );
    assert_eq!(live.counter("solves"), Some(reps));
    assert_eq!(live.shards_absorbed(), 1);
}

#[test]
fn counting_allocator_is_live() {
    // Sanity: the harness actually observes allocations.
    let allocs = allocations_in(|| {
        std::hint::black_box(vec![1u8; 512]);
    });
    assert!(allocs >= 1);
}
