//! Span-timeline instrumentation of the GS engine: the recorded stream
//! is well-formed, one `gs.round` span per proposal round, and the warm
//! path emits resolve/fallback instants with the right reason codes.

use kmatch_gs::{gale_shapley, GsWorkspace};
use kmatch_obs::{ManualClock, NoMetrics, SolverMetrics};
use kmatch_prefs::gen::uniform::uniform_bipartite;
use kmatch_prefs::{DeltaSide, PrefDelta};
use kmatch_trace::{
    check_well_formed, reason, span, EventKind, FlightRecorder, NoSpans, TraceRecorder,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn solve_spanned_emits_one_round_span_per_round() {
    let mut rng = ChaCha8Rng::seed_from_u64(21);
    let inst = uniform_bipartite(32, &mut rng);
    let clock = ManualClock::new();
    let mut rec = TraceRecorder::new(&clock);
    let mut ws = GsWorkspace::new();
    let out = ws.solve_spanned(&inst, &mut NoMetrics, &mut rec);
    let events = rec.events();
    check_well_formed(events, false).unwrap();

    let round_begins = events
        .iter()
        .filter(|e| e.kind == EventKind::Begin && e.name == span::GS_ROUND)
        .count();
    assert_eq!(round_begins as u32, out.stats.rounds);
    // The whole execution sits inside one gs.solve span carrying n.
    assert_eq!(events.first().map(|e| e.name), Some(span::GS_SOLVE));
    assert_eq!(events.first().map(|e| e.arg), Some(32));
    assert_eq!(events.last().map(|e| e.name), Some(span::GS_SOLVE));
    // Round spans carry the 1-based round number in order.
    let round_args: Vec<u64> = events
        .iter()
        .filter(|e| e.kind == EventKind::Begin && e.name == span::GS_ROUND)
        .map(|e| e.arg)
        .collect();
    assert_eq!(round_args, (1..=out.stats.rounds as u64).collect::<Vec<_>>());
}

#[test]
fn spanned_solve_matches_unspanned_exactly() {
    let mut rng = ChaCha8Rng::seed_from_u64(22);
    let clock = ManualClock::new();
    for n in [1usize, 2, 17, 40] {
        let inst = uniform_bipartite(n, &mut rng);
        let mut ws = GsWorkspace::new();
        let mut rec = TraceRecorder::new(&clock);
        let spanned = ws.solve_spanned(&inst, &mut NoMetrics, &mut rec);
        let plain = gale_shapley(&inst);
        assert_eq!(spanned.matching, plain.matching, "n = {n}");
        assert_eq!(spanned.stats, plain.stats, "n = {n}");
    }
}

#[test]
fn warm_resolve_spans_tag_replay_and_fallback() {
    let mut rng = ChaCha8Rng::seed_from_u64(23);
    let n = 24usize;
    let mut inst = uniform_bipartite(n, &mut rng);
    let clock = ManualClock::new();
    let mut ws = GsWorkspace::new();

    // A fresh workspace has nothing to warm-start from: cold fallback.
    let mut rec = TraceRecorder::new(&clock);
    ws.resolve_delta_spanned(&inst, &[], &mut NoMetrics, &mut rec);
    let events = rec.take();
    check_well_formed(&events, false).unwrap();
    assert_eq!(events[0].name, span::GS_WARM_FALLBACK);
    assert_eq!(events[0].arg, reason::COLD_START);

    // A real delta replays warm and reports the re-freed count.
    let delta = PrefDelta::Swap {
        side: DeltaSide::Proposer,
        row: 3,
        a: 0,
        b: (n - 1) as u32,
    };
    inst.apply_delta(&delta).unwrap();
    let mut m = SolverMetrics::new();
    let mut rec = TraceRecorder::new(&clock);
    ws.resolve_delta_spanned(&inst, std::slice::from_ref(&delta), &mut m, &mut rec);
    let events = rec.take();
    check_well_formed(&events, false).unwrap();
    let resolve = events
        .iter()
        .find(|e| e.name == span::GS_WARM_RESOLVE)
        .expect("warm path must emit a gs.warm.resolve instant");
    assert_eq!(resolve.arg, m.refreed_proposers);
    assert!(!events.iter().any(|e| e.name == span::GS_WARM_FALLBACK));

    // A size change falls back with SIZE_MISMATCH.
    let other = uniform_bipartite(n + 5, &mut rng);
    let mut rec = TraceRecorder::new(&clock);
    ws.resolve_delta_spanned(&other, &[], &mut NoMetrics, &mut rec);
    let events = rec.take();
    assert_eq!(events[0].name, span::GS_WARM_FALLBACK);
    assert_eq!(events[0].arg, reason::SIZE_MISMATCH);
}

#[test]
fn flight_recorder_gets_phase_spans_but_no_round_spans() {
    // The always-armed ring declares `FINE = false`: the engine skips
    // the per-round spans entirely (not even a call is made), so the
    // trace holds the gs.solve phase span alone and the ring's overhead
    // stays bounded by events-per-solve, not rounds-per-solve.
    let mut rng = ChaCha8Rng::seed_from_u64(25);
    let inst = uniform_bipartite(32, &mut rng);
    let clock = ManualClock::new();
    let mut ring = FlightRecorder::new(&clock, 1 << 10);
    let mut ws = GsWorkspace::new();
    let out = ws.solve_spanned(&inst, &mut NoMetrics, &mut ring);
    assert_eq!(out.matching, gale_shapley(&inst).matching);
    assert!(out.stats.rounds > 1, "a 32-way instance takes several rounds");
    let events = ring.events();
    check_well_formed(&events, false).unwrap();
    assert_eq!(events.len(), 2, "begin + end of gs.solve, nothing else");
    assert!(events.iter().all(|e| e.name == span::GS_SOLVE));
    assert_eq!(ring.dropped(), 0);
}

#[test]
fn nospans_sink_changes_nothing() {
    let mut rng = ChaCha8Rng::seed_from_u64(24);
    let inst = uniform_bipartite(20, &mut rng);
    let mut ws = GsWorkspace::new();
    let spanned = ws.solve_spanned(&inst, &mut NoMetrics, &mut NoSpans);
    assert_eq!(spanned.matching, gale_shapley(&inst).matching);
}
