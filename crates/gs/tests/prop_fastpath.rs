//! Differential property suite for the zero-allocation GS fast path.
//!
//! The workspace fast path, the traced path, and the CSR-arena path must
//! be *behaviorally indistinguishable* from `gale_shapley_reference` (the
//! seed implementation, kept verbatim): identical matchings, identical
//! proposal counts, identical round counts, on every instance. All
//! randomness is seeded `rand_chacha` driven by the deterministic proptest
//! case stream — failures reproduce exactly.

use kmatch_gs::{gale_shapley_reference, gale_shapley_traced, GsWorkspace};
use kmatch_prefs::gen::uniform::uniform_bipartite;
use kmatch_prefs::CsrPrefs;
use proptest::{prop_assert_eq, proptest, ProptestConfig};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    fn fast_path_equals_reference(n in 1usize..48, seed in 0u64..1 << 32) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let inst = uniform_bipartite(n, &mut rng);
        let reference = gale_shapley_reference(&inst);
        let fast = GsWorkspace::new().solve(&inst);
        prop_assert_eq!(&fast.matching, &reference.matching);
        prop_assert_eq!(fast.stats, reference.stats);
    }

    fn traced_path_equals_reference(n in 1usize..32, seed in 0u64..1 << 32) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let inst = uniform_bipartite(n, &mut rng);
        let reference = gale_shapley_reference(&inst);
        let traced = gale_shapley_traced(&inst);
        prop_assert_eq!(&traced.matching, &reference.matching);
        prop_assert_eq!(traced.stats, reference.stats);
        // The trace must cover exactly the reference's proposal count.
        let proposals = traced
            .trace
            .unwrap()
            .iter()
            .filter(|e| matches!(e, kmatch_gs::GsEvent::Propose { .. }))
            .count() as u64;
        prop_assert_eq!(proposals, reference.stats.proposals);
    }

    fn csr_arena_equals_reference(n in 1usize..48, seed in 0u64..1 << 32) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let inst = uniform_bipartite(n, &mut rng);
        let reference = gale_shapley_reference(&inst);
        let csr = CsrPrefs::from_prefs(&inst);
        let fast = GsWorkspace::new().solve(&csr);
        prop_assert_eq!(&fast.matching, &reference.matching);
        prop_assert_eq!(fast.stats, reference.stats);
    }

    fn workspace_reuse_is_stateless(seed in 0u64..1 << 32) {
        // One workspace across a shrink/grow sequence of instances must
        // behave exactly like fresh solves.
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut ws = GsWorkspace::new();
        let mut arena = CsrPrefs::new();
        for _ in 0..6 {
            let n = rng.gen_range(1..40);
            let inst = uniform_bipartite(n, &mut rng);
            let reference = gale_shapley_reference(&inst);
            let fast = ws.solve(&inst);
            prop_assert_eq!(&fast.matching, &reference.matching);
            prop_assert_eq!(fast.stats, reference.stats);
            arena.load(&inst);
            let via_arena = ws.solve(&arena);
            prop_assert_eq!(&via_arena.matching, &reference.matching);
            prop_assert_eq!(via_arena.stats, reference.stats);
        }
    }
}
