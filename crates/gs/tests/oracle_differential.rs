//! Differential suite for the implicit preference oracles: every oracle
//! backend, materialized into explicit lists (and a `CsrPrefs` table) at
//! n ≤ 64, must drive the GS engine to byte-equal matchings and proposal
//! counts against the oracle-driven solve. The truncated oracle is
//! checked against the SMI reference instead, since its partial
//! matchings live in incomplete-list land.

use kmatch_gs::{is_smi_stable, smi_gale_shapley, GsWorkspace, SmiInstance};
use kmatch_prefs::{
    materialize_bipartite, materialize_mutual_lists, CsrPrefs, DualOracle, RandomPermOracle,
    ScoreOracle, TruncatedOracle,
};

/// The engine walks `entry(p, cursor)` in the same order whether the
/// backend is the oracle itself, the materialized instance, or the CSR
/// table built from it — so outcomes and counters must be identical.
fn assert_oracle_matches_materialized<O: DualOracle>(oracle: &O) {
    let inst = materialize_bipartite(oracle);
    let csr = CsrPrefs::from_prefs(&inst);
    let mut ws = GsWorkspace::new();
    let via_oracle = ws.solve(oracle);
    let via_inst = ws.solve(&inst);
    let via_csr = ws.solve(&csr);
    assert_eq!(
        via_oracle.matching, via_inst.matching,
        "oracle-driven and materialized-instance matchings diverge"
    );
    assert_eq!(via_oracle.stats, via_inst.stats);
    assert_eq!(via_oracle.matching, via_csr.matching);
    assert_eq!(via_oracle.stats, via_csr.stats);
    assert!(kmatch_gs::is_stable(&inst, &via_oracle.matching));
}

#[test]
fn random_perm_oracle_agrees_with_materialized_lists() {
    for n in [1usize, 2, 3, 5, 8, 16, 33, 64] {
        for seed in 0..8u64 {
            assert_oracle_matches_materialized(&RandomPermOracle::new(n, seed));
        }
    }
}

#[test]
fn score_oracle_agrees_with_materialized_lists() {
    for n in [1usize, 2, 3, 5, 8, 16, 33, 64] {
        for seed in 0..8u64 {
            assert_oracle_matches_materialized(&ScoreOracle::popularity(n, seed));
        }
    }
}

#[test]
fn explicit_score_lists_agree_too() {
    // Hand-built scores with ties — the seeded tie-break must produce the
    // same total order on every query path.
    let scores: Vec<f64> = (0..48).map(|i| f64::from(i % 7)).collect();
    for seed in 0..4u64 {
        assert_oracle_matches_materialized(&ScoreOracle::from_scores(&scores, &scores, seed));
    }
}

#[test]
fn truncated_oracle_matches_smi_reference() {
    for n in [2usize, 5, 16, 48, 64] {
        for seed in 0..4u64 {
            for cap in [1u32, 2, 5, 16] {
                let capped = TruncatedOracle::new(RandomPermOracle::new(n, seed), cap);
                let mut ws = GsWorkspace::new();
                let (partial, stats) = ws.solve_partial(&capped);

                let (proposers, responders) = materialize_mutual_lists(&capped);
                let smi = SmiInstance::from_lists(proposers, responders)
                    .expect("mutual materialization is symmetric by construction");
                let (reference, ref_stats) = smi_gale_shapley(&smi);
                assert_eq!(
                    partial, reference,
                    "truncated-oracle partial matching diverges from SMI (n={n} seed={seed} cap={cap})"
                );
                assert!(is_smi_stable(&smi, &partial));
                // The oracle engine also proposes to (then gets refused by)
                // responders that truncated the proposer away; the SMI
                // reference never issues those, so it is a lower bound.
                assert!(
                    stats.proposals >= ref_stats.proposals,
                    "oracle solve cannot propose less than the mutual-list reference"
                );
            }
        }
    }
}

#[test]
fn truncated_cap_at_n_is_the_complete_solve() {
    for n in [3usize, 17, 40] {
        let oracle = RandomPermOracle::new(n, 99);
        let capped = TruncatedOracle::new(oracle, n as u32);
        let mut ws = GsWorkspace::new();
        let complete = ws.solve(&oracle);
        let (partial, stats) = ws.solve_partial(&capped);
        assert_eq!(stats, complete.stats);
        assert_eq!(partial.matched_proposers().len(), n);
        for (m, &w) in partial.partner_of_proposer.iter().enumerate() {
            assert_eq!(complete.matching.partner_of_proposer(m as u32), w);
        }
    }
}
