//! Metrics-vs-trace differential suite: the `SolverMetrics` counters
//! recorded by the zero-overhead metered fast path must agree *exactly*
//! with the event stream produced by the traced reference path on the
//! same instances — proposals with `Propose`, rejections with `Reject`,
//! rounds with `RoundStart`, holder swaps with displacing `Engage`s.
//! All randomness is seeded `rand_chacha` driven by the deterministic
//! proptest case stream.

use kmatch_gs::{gale_shapley_metered, gale_shapley_traced, GsEvent};
use kmatch_obs::SolverMetrics;
use kmatch_prefs::gen::uniform::uniform_bipartite;
use proptest::{prop_assert_eq, proptest, ProptestConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    fn metrics_equal_trace_event_counts(n in 1usize..40, seed in 0u64..1 << 32) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let inst = uniform_bipartite(n, &mut rng);

        let mut m = SolverMetrics::new();
        let metered = gale_shapley_metered(&inst, &mut m);
        let traced = gale_shapley_traced(&inst);
        prop_assert_eq!(&metered.matching, &traced.matching);
        prop_assert_eq!(metered.stats, traced.stats);

        let trace = traced.trace.unwrap();
        let count = |f: &dyn Fn(&GsEvent) -> bool| trace.iter().filter(|e| f(e)).count() as u64;
        let proposes = count(&|e| matches!(e, GsEvent::Propose { .. }));
        let rejects = count(&|e| matches!(e, GsEvent::Reject { .. }));
        let rounds = count(&|e| matches!(e, GsEvent::RoundStart { .. }));
        let engages = count(&|e| matches!(e, GsEvent::Engage { .. }));

        prop_assert_eq!(m.proposals, proposes);
        prop_assert_eq!(m.rejections, rejects);
        prop_assert_eq!(m.rounds, rounds);
        // Every responder's first engagement is not a swap; the other
        // engages displace a held proposer (complete lists ⇒ the final
        // matching is perfect, so each responder engages at least once).
        prop_assert_eq!(m.holder_swaps, engages - n as u64);
        // Conservation: every proposal ends engaged-or-rejected exactly
        // once, and the n final engagements are the ones never rejected.
        prop_assert_eq!(m.rejections, m.proposals - n as u64);
        prop_assert_eq!(m.solves, 1);
        prop_assert_eq!(m.proposals_per_solve.sum(), m.proposals);
    }

    fn metrics_accumulate_across_solves(seed in 0u64..1 << 32) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut m = SolverMetrics::new();
        let mut expect_proposals = 0u64;
        for n in [3usize, 9, 17] {
            let inst = uniform_bipartite(n, &mut rng);
            let out = gale_shapley_metered(&inst, &mut m);
            expect_proposals += out.stats.proposals;
        }
        prop_assert_eq!(m.solves, 3);
        prop_assert_eq!(m.proposals, expect_proposals);
        prop_assert_eq!(m.proposals_per_solve.count(), 3);
    }
}
