//! Preferential-happiness metrics.
//!
//! §II-A observes that "the GS algorithm still favors men over women in
//! terms of preferential happiness": proposers end up high on their own
//! lists, responders low on theirs. These metrics quantify that asymmetry
//! for experiment E1/T4 (and the fairness comparison against the roommates
//! based fair-SMP solver).

use kmatch_prefs::BipartitePrefs;

use crate::matching::BipartiteMatching;

/// Aggregate rank cost of a matching for one side (lower = happier).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankCost {
    /// Mean rank (0 = everyone got their first choice).
    pub mean: f64,
    /// Worst individual rank.
    pub max: u32,
    /// Total rank summed over members.
    pub total: u64,
}

fn summarize(ranks: impl Iterator<Item = u32>) -> RankCost {
    let mut total = 0u64;
    let mut max = 0u32;
    let mut count = 0u64;
    for r in ranks {
        total += r as u64;
        max = max.max(r);
        count += 1;
    }
    RankCost {
        mean: total as f64 / count.max(1) as f64,
        max,
        total,
    }
}

/// Rank cost of the matching from the proposers' point of view.
pub fn proposer_cost<P: BipartitePrefs>(prefs: &P, m: &BipartiteMatching) -> RankCost {
    summarize((0..prefs.n() as u32).map(|p| prefs.proposer_rank(p, m.partner_of_proposer(p))))
}

/// Rank cost of the matching from the responders' point of view.
pub fn responder_cost<P: BipartitePrefs>(prefs: &P, m: &BipartiteMatching) -> RankCost {
    summarize((0..prefs.n() as u32).map(|w| prefs.responder_rank(w, m.partner_of_responder(w))))
}

/// Mean proposer rank (convenience wrapper used by benches).
pub fn mean_proposer_rank<P: BipartitePrefs>(prefs: &P, m: &BipartiteMatching) -> f64 {
    proposer_cost(prefs, m).mean
}

/// Mean responder rank (convenience wrapper used by benches).
pub fn mean_responder_rank<P: BipartitePrefs>(prefs: &P, m: &BipartiteMatching) -> f64 {
    responder_cost(prefs, m).mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::gale_shapley;
    use kmatch_prefs::gen::paper::example1_second;
    use kmatch_prefs::gen::uniform::uniform_bipartite;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn man_optimal_matching_favors_men() {
        let inst = example1_second();
        let man_opt = gale_shapley(&inst).matching;
        assert_eq!(
            mean_proposer_rank(&inst, &man_opt),
            0.0,
            "every man got his top choice"
        );
        assert_eq!(
            mean_responder_rank(&inst, &man_opt),
            1.0,
            "every woman got her last choice"
        );
    }

    #[test]
    fn gs_bias_holds_statistically() {
        // Over random instances, proposers average a better (lower) rank
        // than responders under proposer-proposing GS.
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let mut p_sum = 0.0;
        let mut r_sum = 0.0;
        for _ in 0..30 {
            let inst = uniform_bipartite(30, &mut rng);
            let m = gale_shapley(&inst).matching;
            p_sum += mean_proposer_rank(&inst, &m);
            r_sum += mean_responder_rank(&inst, &m);
        }
        assert!(p_sum < r_sum, "proposer bias: {p_sum} !< {r_sum}");
    }

    #[test]
    fn cost_fields_consistent() {
        let inst = example1_second();
        let m = gale_shapley(&inst).matching;
        let c = responder_cost(&inst, &m);
        assert_eq!(c.total, 2);
        assert_eq!(c.max, 1);
        assert!((c.mean - 1.0).abs() < 1e-12);
    }
}
