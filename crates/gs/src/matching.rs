//! Perfect bipartite matchings.

/// A perfect matching between `n` proposers and `n` responders, stored in
/// both directions for O(1) partner lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BipartiteMatching {
    partner_of_proposer: Vec<u32>,
    partner_of_responder: Vec<u32>,
}

impl BipartiteMatching {
    /// Build from the proposer-side partner array; the responder side is
    /// derived.
    ///
    /// # Panics
    /// If `partner_of_proposer` is not a permutation of `0..n`.
    pub fn from_proposer_partners(partner_of_proposer: Vec<u32>) -> Self {
        let n = partner_of_proposer.len();
        let mut partner_of_responder = vec![u32::MAX; n];
        for (m, &w) in partner_of_proposer.iter().enumerate() {
            let slot = &mut partner_of_responder[w as usize];
            assert_eq!(*slot, u32::MAX, "responder {w} matched twice");
            *slot = m as u32;
        }
        BipartiteMatching {
            partner_of_proposer,
            partner_of_responder,
        }
    }

    /// Number of pairs.
    pub fn n(&self) -> usize {
        self.partner_of_proposer.len()
    }

    /// Responder matched with proposer `m`.
    #[inline]
    pub fn partner_of_proposer(&self, m: u32) -> u32 {
        self.partner_of_proposer[m as usize]
    }

    /// Proposer matched with responder `w`.
    #[inline]
    pub fn partner_of_responder(&self, w: u32) -> u32 {
        self.partner_of_responder[w as usize]
    }

    /// All pairs as `(proposer, responder)`, in proposer order.
    pub fn pairs(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.partner_of_proposer
            .iter()
            .enumerate()
            .map(|(m, &w)| (m as u32, w))
    }

    /// The same matching with the roles swapped.
    pub fn swapped(&self) -> BipartiteMatching {
        BipartiteMatching {
            partner_of_proposer: self.partner_of_responder.clone(),
            partner_of_responder: self.partner_of_proposer.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverse_is_consistent() {
        let m = BipartiteMatching::from_proposer_partners(vec![2, 0, 1]);
        assert_eq!(m.partner_of_proposer(0), 2);
        assert_eq!(m.partner_of_responder(2), 0);
        assert_eq!(m.partner_of_responder(0), 1);
        assert_eq!(m.pairs().collect::<Vec<_>>(), vec![(0, 2), (1, 0), (2, 1)]);
    }

    #[test]
    #[should_panic(expected = "matched twice")]
    fn rejects_non_permutation() {
        let _ = BipartiteMatching::from_proposer_partners(vec![1, 1]);
    }

    #[test]
    fn swapped_inverts() {
        let m = BipartiteMatching::from_proposer_partners(vec![2, 0, 1]);
        let s = m.swapped();
        assert_eq!(s.partner_of_proposer(2), 0);
        assert_eq!(s.swapped(), m);
    }
}
