//! Rotations and the lattice of all stable matchings of an SMP instance.
//!
//! The stable matchings of a marriage instance form a distributive lattice
//! between the man-optimal and woman-optimal matchings (Knuth, attributed
//! to Conway); moving down the lattice = eliminating *rotations*
//! (Gusfield & Irving 1989 — reference 9 of the paper). The paper leans
//! on exactly this structure in §III-B when it alternates man- and
//! woman-oriented loop breaking for procedural fairness; this module makes
//! the whole lattice explorable so the fairness experiments can report
//! *where* each solver's output sits among all stable matchings.
//!
//! A rotation exposed in stable matching `M` is a cyclic sequence
//! `(m_0, w_0), …, (m_{r−1}, w_{r−1})` with `w_i = M(m_i)` and
//! `w_{i+1} = s_M(m_i)`, where `s_M(m)` is the first woman after `M(m)` on
//! `m`'s list who prefers `m` to her current partner. Eliminating it
//! remarries `m_i` with `w_{i+1}`, yielding another stable matching that
//! is strictly worse for the men involved and better for the women.

use std::collections::{HashSet, VecDeque};

use kmatch_prefs::BipartiteInstance;

use crate::engine::{gale_shapley, responder_optimal};
use crate::matching::BipartiteMatching;
use crate::stability::is_stable;

/// A rotation exposed in some stable matching: the cyclically-ordered
/// `(man, current wife)` pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmpRotation {
    /// The men of the rotation, in cycle order.
    pub men: Vec<u32>,
    /// `wives[i]` = the current wife of `men[i]` (before elimination).
    pub wives: Vec<u32>,
}

/// `s_M(m)`: the first woman after `M(m)` on `m`'s list who prefers `m` to
/// her current partner, if any.
fn next_candidate(inst: &BipartiteInstance, matching: &BipartiteMatching, m: u32) -> Option<u32> {
    let current = matching.partner_of_proposer(m);
    let list = inst.proposer_list(m);
    let start = inst.proposer_rank(m, current) as usize + 1;
    list[start..]
        .iter()
        .copied()
        .find(|&w| inst.responder_prefers(w, m, matching.partner_of_responder(w)))
}

/// Find every rotation exposed in `matching` (each man belongs to at most
/// one exposed rotation).
pub fn exposed_rotations(
    inst: &BipartiteInstance,
    matching: &BipartiteMatching,
) -> Vec<SmpRotation> {
    let n = inst.n();
    // Functional graph on men: m -> husband of s_M(m).
    let succ: Vec<Option<u32>> = (0..n as u32)
        .map(|m| next_candidate(inst, matching, m).map(|w| matching.partner_of_responder(w)))
        .collect();
    // Cycles of this partial functional graph are the exposed rotations.
    let mut state = vec![0u8; n]; // 0 = unseen, 1 = on stack, 2 = done
    let mut rotations = Vec::new();
    for start in 0..n as u32 {
        if state[start as usize] != 0 {
            continue;
        }
        let mut path = Vec::new();
        let mut cur = Some(start);
        while let Some(m) = cur {
            match state[m as usize] {
                1 => {
                    // Found a cycle: the tail of `path` from m.
                    let pos = path.iter().position(|&x| x == m).expect("on stack");
                    let men: Vec<u32> = path[pos..].to_vec();
                    let wives = men
                        .iter()
                        .map(|&x| matching.partner_of_proposer(x))
                        .collect();
                    rotations.push(SmpRotation { men, wives });
                    break;
                }
                2 => break,
                _ => {
                    state[m as usize] = 1;
                    path.push(m);
                    cur = succ[m as usize];
                }
            }
        }
        for &m in &path {
            state[m as usize] = 2;
        }
    }
    rotations
}

/// Eliminate a rotation: each `m_i` remarries `s_M(m_i) = w_{i+1}`.
pub fn eliminate(matching: &BipartiteMatching, rotation: &SmpRotation) -> BipartiteMatching {
    let n = matching.n();
    let mut partner: Vec<u32> = (0..n as u32)
        .map(|m| matching.partner_of_proposer(m))
        .collect();
    let r = rotation.men.len();
    for i in 0..r {
        let m = rotation.men[i];
        let next_wife = rotation.wives[(i + 1) % r];
        partner[m as usize] = next_wife;
    }
    BipartiteMatching::from_proposer_partners(partner)
}

/// The full lattice of stable matchings, enumerated by BFS over rotation
/// eliminations from the man-optimal matching.
#[derive(Debug, Clone)]
pub struct StableLattice {
    /// All stable matchings, man-optimal first (insertion order of the
    /// BFS; the woman-optimal matching is always present).
    pub matchings: Vec<BipartiteMatching>,
    /// Total rotation eliminations performed during enumeration.
    pub eliminations: u64,
}

impl StableLattice {
    /// Index of the matching minimizing `cost` (ties → first).
    pub fn argmin_by<F: Fn(&BipartiteMatching) -> u64>(&self, cost: F) -> usize {
        self.matchings
            .iter()
            .enumerate()
            .min_by_key(|(_, m)| cost(m))
            .expect("lattice is non-empty")
            .0
    }

    /// The egalitarian stable matching: minimum total rank summed over
    /// both sides.
    pub fn egalitarian(&self, inst: &BipartiteInstance) -> &BipartiteMatching {
        let idx = self.argmin_by(|m| {
            (0..inst.n() as u32)
                .map(|p| {
                    inst.proposer_rank(p, m.partner_of_proposer(p)) as u64
                        + inst.responder_rank(p, m.partner_of_responder(p)) as u64
                })
                .sum()
        });
        &self.matchings[idx]
    }

    /// The sex-equal stable matching: minimizes |men's total rank −
    /// women's total rank|.
    pub fn sex_equal(&self, inst: &BipartiteInstance) -> &BipartiteMatching {
        let idx = self.argmin_by(|m| {
            let men: u64 = (0..inst.n() as u32)
                .map(|p| inst.proposer_rank(p, m.partner_of_proposer(p)) as u64)
                .sum();
            let women: u64 = (0..inst.n() as u32)
                .map(|w| inst.responder_rank(w, m.partner_of_responder(w)) as u64)
                .sum();
            men.abs_diff(women)
        });
        &self.matchings[idx]
    }
}

/// Enumerate all stable matchings by rotation elimination. `limit` caps
/// the lattice size (an error is returned when exceeded — lattices can be
/// exponential).
pub fn enumerate_stable_lattice(
    inst: &BipartiteInstance,
    limit: usize,
) -> Result<StableLattice, String> {
    let man_opt = gale_shapley(inst).matching;
    debug_assert!(is_stable(inst, &man_opt));
    let mut seen: HashSet<Vec<u32>> = HashSet::new();
    let mut matchings = Vec::new();
    let mut queue = VecDeque::new();
    let key = |m: &BipartiteMatching| -> Vec<u32> { m.pairs().map(|(_, w)| w).collect() };
    seen.insert(key(&man_opt));
    matchings.push(man_opt.clone());
    queue.push_back(man_opt);
    let mut eliminations = 0u64;
    while let Some(m) = queue.pop_front() {
        for rot in exposed_rotations(inst, &m) {
            eliminations += 1;
            let next = eliminate(&m, &rot);
            debug_assert!(
                is_stable(inst, &next),
                "elimination must preserve stability"
            );
            if seen.insert(key(&next)) {
                if matchings.len() >= limit {
                    return Err(format!("stable lattice exceeds limit {limit}"));
                }
                matchings.push(next.clone());
                queue.push_back(next);
            }
        }
    }
    // Sanity: the woman-optimal matching must be in the lattice.
    debug_assert!(seen.contains(&key(&responder_optimal(inst).matching)));
    Ok(StableLattice {
        matchings,
        eliminations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stability::all_stable_matchings;
    use kmatch_prefs::gen::paper::{example1_first, example1_second};
    use kmatch_prefs::gen::uniform::uniform_bipartite;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn example1_lattices() {
        let l = enumerate_stable_lattice(&example1_first(), 100).unwrap();
        assert_eq!(l.matchings.len(), 1, "unique stable matching");
        let l = enumerate_stable_lattice(&example1_second(), 100).unwrap();
        assert_eq!(l.matchings.len(), 2, "man- and woman-optimal");
        // Man-optimal first; eliminating its single rotation gives the
        // woman-optimal.
        assert_eq!(l.matchings[0].partner_of_proposer(0), 0);
        assert_eq!(l.matchings[1].partner_of_proposer(0), 1);
    }

    #[test]
    fn lattice_equals_brute_force() {
        let mut rng = ChaCha8Rng::seed_from_u64(95);
        for n in [2usize, 4, 6, 7] {
            for _ in 0..10 {
                let inst = uniform_bipartite(n, &mut rng);
                let lattice = enumerate_stable_lattice(&inst, 10_000).unwrap();
                let brute = all_stable_matchings(&inst);
                let as_set = |ms: &[BipartiteMatching]| -> std::collections::HashSet<Vec<u32>> {
                    ms.iter()
                        .map(|m| m.pairs().map(|(_, w)| w).collect())
                        .collect()
                };
                assert_eq!(
                    as_set(&lattice.matchings),
                    as_set(&brute),
                    "n = {n}: rotation enumeration must equal brute force"
                );
            }
        }
    }

    #[test]
    fn extremes_are_in_lattice_and_extreme() {
        let mut rng = ChaCha8Rng::seed_from_u64(96);
        let inst = uniform_bipartite(8, &mut rng);
        let lattice = enumerate_stable_lattice(&inst, 10_000).unwrap();
        let man_opt = &lattice.matchings[0];
        let woman_opt = responder_optimal(&inst).matching;
        // Every man is weakly happier under man_opt than any lattice
        // element; dually for women under woman_opt.
        for m in &lattice.matchings {
            for p in 0..8u32 {
                assert!(
                    inst.proposer_rank(p, man_opt.partner_of_proposer(p))
                        <= inst.proposer_rank(p, m.partner_of_proposer(p))
                );
                assert!(
                    inst.responder_rank(p, woman_opt.partner_of_responder(p))
                        <= inst.responder_rank(p, m.partner_of_responder(p))
                );
            }
        }
    }

    #[test]
    fn egalitarian_and_sex_equal_are_stable_members() {
        let mut rng = ChaCha8Rng::seed_from_u64(97);
        let inst = uniform_bipartite(10, &mut rng);
        let lattice = enumerate_stable_lattice(&inst, 10_000).unwrap();
        let eg = lattice.egalitarian(&inst).clone();
        let se = lattice.sex_equal(&inst).clone();
        assert!(is_stable(&inst, &eg));
        assert!(is_stable(&inst, &se));
        // Egalitarian total cost is minimal by construction; spot-check
        // against the extremes.
        let total = |m: &BipartiteMatching| -> u64 {
            (0..10u32)
                .map(|p| {
                    inst.proposer_rank(p, m.partner_of_proposer(p)) as u64
                        + inst.responder_rank(p, m.partner_of_responder(p)) as u64
                })
                .sum()
        };
        assert!(total(&eg) <= total(&lattice.matchings[0]));
    }

    #[test]
    fn rotation_structure_of_deadlock() {
        // The Fig. 2 deadlock: one rotation exposed in the man-optimal
        // matching, involving both men.
        let inst = example1_second();
        let man_opt = gale_shapley(&inst).matching;
        let rots = exposed_rotations(&inst, &man_opt);
        assert_eq!(rots.len(), 1);
        let mut men = rots[0].men.clone();
        men.sort_unstable();
        assert_eq!(men, vec![0, 1]);
        // Eliminating it yields the woman-optimal matching, after which no
        // rotation is exposed.
        let next = eliminate(&man_opt, &rots[0]);
        assert_eq!(next, responder_optimal(&inst).matching);
        assert!(exposed_rotations(&inst, &next).is_empty());
    }

    #[test]
    fn limit_is_enforced() {
        // Latin-square-like instances have large lattices; a tiny limit
        // must error rather than blow up.
        let inst = kmatch_prefs::gen::structured::cyclic_bipartite(6);
        let r = enumerate_stable_lattice(&inst, 2);
        if let Ok(l) = r {
            assert!(l.matchings.len() <= 2);
        }
        // (cyclic instances of size 6 may or may not exceed 2 — the point
        // is no panic either way; a genuine overflow errors.)
        let mut rng = ChaCha8Rng::seed_from_u64(98);
        let mut hit_limit = false;
        for _ in 0..20 {
            let inst = uniform_bipartite(12, &mut rng);
            if enumerate_stable_lattice(&inst, 3).is_err() {
                hit_limit = true;
                break;
            }
        }
        assert!(
            hit_limit,
            "some n = 12 instance has more than 3 stable matchings"
        );
    }
}
