//! McVitie–Wilson proposer-rotation variant of Gale–Shapley.
//!
//! Instead of synchronized rounds, proposers enter one at a time and every
//! displacement is resolved immediately by a chain of re-proposals. GS is
//! confluent — any order of valid proposals yields the same
//! proposer-optimal matching — so this variant must agree with
//! [`crate::engine::gale_shapley`] everywhere; the cross-check is both a
//! correctness test of the engine and the sequential baseline with minimal
//! bookkeeping for benches.

use kmatch_prefs::BipartitePrefs;

use crate::engine::{GsOutcome, GsStats};
use crate::matching::BipartiteMatching;

const FREE: u32 = u32::MAX;

/// Run the McVitie–Wilson variant; returns the proposer-optimal matching
/// (identical to [`crate::engine::gale_shapley`]) with proposal counts.
/// `rounds` reports the number of displacement chains (one per initial
/// entry), which differs from the synchronous round count by design.
pub fn mcvitie_wilson<P: BipartitePrefs>(prefs: &P) -> GsOutcome {
    let n = prefs.n();
    assert!(n > 0, "empty instance");
    let mut next = vec![0u32; n];
    let mut fiance = vec![FREE; n];
    let mut stats = GsStats::default();

    for entrant in 0..n as u32 {
        stats.rounds += 1;
        let mut m = entrant;
        // Chase the displacement chain until someone lands on a free
        // responder.
        loop {
            let list = prefs.proposer_list(m);
            let w = list[next[m as usize] as usize];
            next[m as usize] += 1;
            stats.proposals += 1;
            let holder = fiance[w as usize];
            if holder == FREE {
                fiance[w as usize] = m;
                break;
            }
            if prefs.responder_prefers(w, m, holder) {
                fiance[w as usize] = m;
                m = holder; // Displaced proposer continues the chain.
            }
        }
    }

    let mut partner = vec![0u32; n];
    for (w, &m) in fiance.iter().enumerate() {
        partner[m as usize] = w as u32;
    }
    GsOutcome {
        matching: BipartiteMatching::from_proposer_partners(partner),
        stats,
        trace: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::gale_shapley;
    use kmatch_prefs::gen::structured::identical_bipartite;
    use kmatch_prefs::gen::uniform::uniform_bipartite;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn agrees_with_round_based_engine() {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        for n in [1usize, 2, 3, 10, 50] {
            for _ in 0..5 {
                let inst = uniform_bipartite(n, &mut rng);
                let a = gale_shapley(&inst);
                let b = mcvitie_wilson(&inst);
                assert_eq!(a.matching, b.matching, "confluence violated at n = {n}");
                assert_eq!(a.stats.proposals, b.stats.proposals, "same proposal total");
            }
        }
    }

    #[test]
    fn identical_lists_quadratic() {
        let out = mcvitie_wilson(&identical_bipartite(12));
        assert_eq!(out.stats.proposals, 12 * 13 / 2);
        assert_eq!(out.stats.rounds, 12, "one chain per entrant");
    }
}
