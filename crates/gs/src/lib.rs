//! # kmatch-gs — instrumented Gale–Shapley engines
//!
//! The binding primitive of the paper's Algorithm 1 is one run of the
//! Gale–Shapley (GS) deferred-acceptance algorithm between two genders
//! (`GS(i, j)`, §II-A). This crate provides:
//!
//! * [`engine::gale_shapley`] — the classic proposer-proposing algorithm,
//!   generic over [`kmatch_prefs::BipartitePrefs`] so it runs equally on an
//!   owned SMP instance or a zero-copy view of two genders of a k-partite
//!   instance. Fully instrumented: proposal count (the paper's "iterations
//!   of the matching process", Theorem 3) and round count (the PRAM cost
//!   unit of §IV-C).
//! * [`engine::gale_shapley_traced`] — the same algorithm emitting a full
//!   event trace (proposals, engagements, rejections) for debugging and the
//!   worked-example regression tests.
//! * [`mcvitie`] — the McVitie–Wilson proposer-rotation variant: same
//!   matching (GS is confluent), different control flow; used as an
//!   internal cross-check.
//! * [`stability`] — blocking-pair search and stability certificates for
//!   bipartite matchings.
//! * [`metrics`] — preferential-happiness metrics (mean proposer/responder
//!   rank) quantifying the "GS favors men" observation of §II-A.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod egalitarian;
pub mod engine;
pub mod hospitals;
pub mod incomplete;
pub mod matching;
pub mod mcvitie;
pub mod metrics;
pub mod rotations;
pub mod stability;
pub mod ties;
pub mod trace;

pub use egalitarian::{all_rotations, egalitarian_stable_matching};
pub use engine::{
    gale_shapley, gale_shapley_metered, gale_shapley_reference, gale_shapley_traced,
    responder_optimal, GsOutcome, GsStats, GsWorkspace,
};
pub use hospitals::{
    find_hr_blocking_pair, hospitals_residents, is_hr_stable, Assignment, HospitalsInstance,
};
pub use incomplete::{
    find_smi_blocking_pair, is_smi_stable, smi_gale_shapley, PartialMatching, SmiInstance,
    UNMATCHED,
};
pub use matching::BipartiteMatching;
pub use mcvitie::mcvitie_wilson;
pub use metrics::{
    mean_proposer_rank, mean_responder_rank, proposer_cost, responder_cost, RankCost,
};
pub use rotations::{enumerate_stable_lattice, exposed_rotations, SmpRotation, StableLattice};
pub use stability::{all_stable_matchings, find_blocking_pair, is_stable, BlockingPair};
pub use ties::{
    find_tied_blocking_pair, is_tied_stable, solve_weak, TieStability, TiedBipartiteInstance,
};
pub use trace::GsEvent;
