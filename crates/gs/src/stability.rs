//! Blocking-pair search for bipartite matchings.
//!
//! A matching is unstable iff some proposer `m` and responder `w`, not
//! matched to each other, each strictly prefer the other to their assigned
//! partner (§I). `find_blocking_pair` returns the first such pair in
//! proposer-major order, giving deterministic counterexamples in tests.

use kmatch_prefs::BipartitePrefs;

use crate::matching::BipartiteMatching;

/// A witness of instability: `(proposer, responder)` prefer each other to
/// their assigned partners.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockingPair {
    /// The proposer-side member of the blocking pair.
    pub proposer: u32,
    /// The responder-side member of the blocking pair.
    pub responder: u32,
}

/// Find a blocking pair, if any, scanning proposers in index order and each
/// proposer's list in preference order.
///
/// For each proposer `m`, only responders `m` strictly prefers to its
/// current partner can block, so the scan stops at `m`'s partner — total
/// cost `O(n²)` worst case but typically far less on stable-ish matchings.
pub fn find_blocking_pair<P: BipartitePrefs>(
    prefs: &P,
    matching: &BipartiteMatching,
) -> Option<BlockingPair> {
    let n = prefs.n();
    assert_eq!(matching.n(), n, "matching size must equal instance size");
    for m in 0..n as u32 {
        let current = matching.partner_of_proposer(m);
        for &w in prefs.proposer_list(m) {
            if w == current {
                break; // Everything after this is worse for m.
            }
            let her_partner = matching.partner_of_responder(w);
            if prefs.responder_prefers(w, m, her_partner) {
                return Some(BlockingPair {
                    proposer: m,
                    responder: w,
                });
            }
        }
    }
    None
}

/// Is the matching stable under `prefs`?
pub fn is_stable<P: BipartitePrefs>(prefs: &P, matching: &BipartiteMatching) -> bool {
    find_blocking_pair(prefs, matching).is_none()
}

/// Exhaustively enumerate **all** stable matchings of a small instance by
/// checking every permutation — ground truth for regression tests
/// (practical to `n ≤ 8`).
pub fn all_stable_matchings<P: BipartitePrefs>(prefs: &P) -> Vec<BipartiteMatching> {
    let n = prefs.n();
    assert!(n <= 8, "exhaustive enumeration is factorial; use n <= 8");
    let mut out = Vec::new();
    let mut perm: Vec<u32> = (0..n as u32).collect();
    permute(&mut perm, 0, &mut |p: &[u32]| {
        let m = BipartiteMatching::from_proposer_partners(p.to_vec());
        if is_stable(prefs, &m) {
            out.push(m);
        }
    });
    out
}

fn permute(perm: &mut [u32], i: usize, visit: &mut impl FnMut(&[u32])) {
    if i == perm.len() {
        visit(perm);
        return;
    }
    for j in i..perm.len() {
        perm.swap(i, j);
        permute(perm, i + 1, visit);
        perm.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::gale_shapley;
    use kmatch_prefs::gen::paper::{example1_first, example1_second};
    use kmatch_prefs::gen::uniform::uniform_bipartite;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn detects_instability() {
        let inst = example1_first();
        // (m, w), (m', w') is unstable: m' and w prefer each other.
        let bad = BipartiteMatching::from_proposer_partners(vec![0, 1]);
        let bp = find_blocking_pair(&inst, &bad).expect("blocking pair exists");
        assert_eq!(
            bp,
            BlockingPair {
                proposer: 1,
                responder: 0
            }
        );
        assert!(!is_stable(&inst, &bad));
    }

    #[test]
    fn gs_outputs_are_stable() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        for n in [2usize, 7, 20] {
            let inst = uniform_bipartite(n, &mut rng);
            assert!(is_stable(&inst, &gale_shapley(&inst).matching));
        }
    }

    #[test]
    fn example1_second_has_exactly_two_stable_matchings() {
        // Paper: both (m,w),(m',w') and (m,w'),(m',w) are stable.
        let all = all_stable_matchings(&example1_second());
        assert_eq!(all.len(), 2);
        let man_opt = BipartiteMatching::from_proposer_partners(vec![0, 1]);
        let woman_opt = BipartiteMatching::from_proposer_partners(vec![1, 0]);
        assert!(all.contains(&man_opt));
        assert!(all.contains(&woman_opt));
    }

    #[test]
    fn example1_first_has_one_stable_matching() {
        let all = all_stable_matchings(&example1_first());
        assert_eq!(
            all,
            vec![BipartiteMatching::from_proposer_partners(vec![1, 0])]
        );
    }

    #[test]
    fn proposer_optimality_on_random_instances() {
        // The GS matching gives every proposer its best partner over all
        // stable matchings (classic result, checked exhaustively).
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..10 {
            let inst = uniform_bipartite(5, &mut rng);
            let gs = gale_shapley(&inst).matching;
            for other in all_stable_matchings(&inst) {
                for m in 0..5u32 {
                    let via_gs = inst.proposer_rank(m, gs.partner_of_proposer(m));
                    let via_other = inst.proposer_rank(m, other.partner_of_proposer(m));
                    assert!(via_gs <= via_other, "GS must be proposer-optimal");
                }
            }
        }
    }
}
