//! Polynomial-time egalitarian stable marriage via the rotation poset.
//!
//! The lattice enumeration in [`crate::rotations`] is exponential in the
//! worst case. The classical Irving–Leather–Gusfield result computes the
//! **egalitarian** stable matching (minimum total rank over both sides) in
//! polynomial time: every stable matching corresponds to a *closed subset*
//! of the rotation poset; eliminating a rotation changes the total cost by
//! a constant weight; so the optimum is the man-optimal matching plus the
//! minimum-weight closed subset, found by min-cut (project selection,
//! `kmatch_graph::maxflow`).
//!
//! Poset construction here is *semantic* and provably correct (at `O(R)`
//! elimination sweeps): `π′ ⪯ π` iff `π` is **not** eliminated by the
//! greedy sweep that eliminates every exposed rotation except `π′` — that
//! sweep terminates at the unique maximal closed set avoiding `π′`, which
//! contains exactly the rotations not above `π′`. Tests cross-validate the
//! whole pipeline against exhaustive lattice enumeration.

use std::collections::HashMap;

use kmatch_graph::maxflow::min_weight_closed_set;
use kmatch_prefs::BipartiteInstance;

use crate::engine::gale_shapley;
use crate::matching::BipartiteMatching;
use crate::rotations::{eliminate, exposed_rotations, SmpRotation};

/// Canonical identity of a rotation: its sorted `(man, wife)` pairs (the
/// same rotation carries the same pairs in every elimination order).
fn rotation_key(rot: &SmpRotation) -> Vec<(u32, u32)> {
    let mut pairs: Vec<(u32, u32)> = rot
        .men
        .iter()
        .copied()
        .zip(rot.wives.iter().copied())
        .collect();
    pairs.sort_unstable();
    pairs
}

/// All rotations of the instance, discovered by one maximal elimination
/// sweep from the man-optimal matching (every maximal sweep meets every
/// rotation exactly once).
pub fn all_rotations(inst: &BipartiteInstance) -> Vec<SmpRotation> {
    let mut matching = gale_shapley(inst).matching;
    let mut out = Vec::new();
    loop {
        let exposed = exposed_rotations(inst, &matching);
        let Some(rot) = exposed.into_iter().next() else {
            return out;
        };
        matching = eliminate(&matching, &rot);
        out.push(rot);
    }
}

/// Greedy sweep that never eliminates the rotation keyed `avoid`; returns
/// the keys of everything eliminated — exactly the rotations **not above**
/// `avoid` in the poset.
fn sweep_avoiding(
    inst: &BipartiteInstance,
    avoid: &[(u32, u32)],
) -> std::collections::HashSet<Vec<(u32, u32)>> {
    let mut matching = gale_shapley(inst).matching;
    let mut eliminated = std::collections::HashSet::new();
    loop {
        let exposed = exposed_rotations(inst, &matching);
        let Some(rot) = exposed.into_iter().find(|r| rotation_key(r) != avoid) else {
            return eliminated;
        };
        eliminated.insert(rotation_key(&rot));
        matching = eliminate(&matching, &rot);
    }
}

/// Change in total rank (both sides) caused by eliminating `rot` —
/// independent of when it is eliminated, since only the rotation's own
/// pairs change.
fn rotation_weight(inst: &BipartiteInstance, rot: &SmpRotation) -> i64 {
    let r = rot.men.len();
    let mut delta = 0i64;
    for i in 0..r {
        let m = rot.men[i];
        let old_w = rot.wives[i];
        let new_w = rot.wives[(i + 1) % r];
        delta += inst.proposer_rank(m, new_w) as i64 - inst.proposer_rank(m, old_w) as i64;
        // Woman new_w trades the man matched before (men[i+1]) for men[i].
        let old_m = rot.men[(i + 1) % r];
        delta += inst.responder_rank(new_w, m) as i64 - inst.responder_rank(new_w, old_m) as i64;
    }
    delta
}

/// The egalitarian stable matching, in polynomial time.
///
/// Returns the matching and its total rank cost (sum over both sides).
pub fn egalitarian_stable_matching(inst: &BipartiteInstance) -> (BipartiteMatching, u64) {
    let rotations = all_rotations(inst);
    let r = rotations.len();
    let keys: Vec<Vec<(u32, u32)>> = rotations.iter().map(rotation_key).collect();
    let index: HashMap<&Vec<(u32, u32)>, usize> =
        keys.iter().enumerate().map(|(i, k)| (k, i)).collect();

    // Precedence: for each rotation π′, everything NOT eliminated by the
    // avoiding sweep is above π′ (π′ itself included).
    let mut requires: Vec<(u32, u32)> = Vec::new();
    for (i, key) in keys.iter().enumerate() {
        let reached = sweep_avoiding(inst, key);
        for (j, other) in keys.iter().enumerate() {
            if j != i && !reached.contains(other) {
                // `other` (j) is above π′ (i): choosing j requires i.
                requires.push((j as u32, i as u32));
            }
        }
    }

    let weights: Vec<i64> = rotations
        .iter()
        .map(|rot| rotation_weight(inst, rot))
        .collect();
    let (chosen, _) = min_weight_closed_set(&weights, &requires);

    // Apply the chosen closed set: repeatedly eliminate exposed rotations
    // that are in the set.
    let mut matching = gale_shapley(inst).matching;
    let mut remaining: std::collections::HashSet<usize> = (0..r).filter(|&i| chosen[i]).collect();
    while !remaining.is_empty() {
        let exposed = exposed_rotations(inst, &matching);
        let next = exposed
            .into_iter()
            .find(|rot| {
                index
                    .get(&rotation_key(rot))
                    .is_some_and(|i| remaining.contains(i))
            })
            .expect("a chosen closed set always has an exposed member");
        remaining.remove(&index[&rotation_key(&next)]);
        matching = eliminate(&matching, &next);
    }

    let cost: u64 = (0..inst.n() as u32)
        .map(|p| {
            inst.proposer_rank(p, matching.partner_of_proposer(p)) as u64
                + inst.responder_rank(p, matching.partner_of_responder(p)) as u64
        })
        .sum();
    (matching, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rotations::enumerate_stable_lattice;
    use crate::stability::is_stable;
    use kmatch_prefs::gen::uniform::uniform_bipartite;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn total_cost(inst: &BipartiteInstance, m: &BipartiteMatching) -> u64 {
        (0..inst.n() as u32)
            .map(|p| {
                inst.proposer_rank(p, m.partner_of_proposer(p)) as u64
                    + inst.responder_rank(p, m.partner_of_responder(p)) as u64
            })
            .sum()
    }

    #[test]
    fn matches_lattice_enumeration() {
        // The flagship correctness test: the poly-time egalitarian cost
        // must equal the exhaustive lattice minimum on many instances.
        let mut rng = ChaCha8Rng::seed_from_u64(191);
        for n in [2usize, 4, 8, 12, 16] {
            for _ in 0..15 {
                let inst = uniform_bipartite(n, &mut rng);
                let (m, cost) = egalitarian_stable_matching(&inst);
                assert!(is_stable(&inst, &m), "n = {n}");
                assert_eq!(cost, total_cost(&inst, &m));
                let lattice = enumerate_stable_lattice(&inst, 1_000_000).unwrap();
                let best = lattice
                    .matchings
                    .iter()
                    .map(|mm| total_cost(&inst, mm))
                    .min()
                    .unwrap();
                assert_eq!(
                    cost, best,
                    "n = {n}: min-cut must match the lattice optimum"
                );
            }
        }
    }

    #[test]
    fn unique_stable_matching_instance() {
        let inst = kmatch_prefs::gen::paper::example1_first();
        let (m, _) = egalitarian_stable_matching(&inst);
        assert_eq!(m.partner_of_proposer(0), 1, "the unique stable matching");
    }

    #[test]
    fn deadlock_instance_picks_either_extreme() {
        // Both stable matchings of the Fig. 2 instance cost 2; the solver
        // must return one of them.
        let inst = kmatch_prefs::gen::paper::example1_second();
        let (m, cost) = egalitarian_stable_matching(&inst);
        assert!(is_stable(&inst, &m));
        assert_eq!(cost, 2);
    }

    #[test]
    fn rotation_discovery_counts() {
        // Rotations split the lattice: |rotations| >= log2(lattice size).
        let mut rng = ChaCha8Rng::seed_from_u64(192);
        let inst = uniform_bipartite(10, &mut rng);
        let rots = all_rotations(&inst);
        let lattice = enumerate_stable_lattice(&inst, 1_000_000).unwrap();
        assert!(
            (1usize << rots.len().min(20)) >= lattice.matchings.len(),
            "2^R bounds the lattice size"
        );
    }
}
