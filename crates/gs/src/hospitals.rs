//! The hospitals/residents (college admissions) problem — the many-to-one
//! generalization of the SMP that the paper's related-work section (§V-A)
//! singles out: "a hospital (college) can take multiple residents
//! (students)".
//!
//! Resident-proposing deferred acceptance: each hospital `h` with capacity
//! `c_h` provisionally keeps the best `c_h` applicants seen so far. The
//! outcome is resident-optimal among stable assignments (Gale & Shapley's
//! original college-admissions result), and with all capacities 1 the
//! algorithm *is* the SMP engine — a cross-check the tests enforce.

use kmatch_prefs::{PrefsError, Rank};

use crate::engine::GsStats;

/// Is `list` a permutation of `0..n`? (`seen` is scratch of length ≥ n.)
fn permutation_check(list: &[u32], n: usize, seen: &mut [bool]) -> bool {
    if list.len() != n {
        return false;
    }
    seen[..n].iter_mut().for_each(|s| *s = false);
    for &x in list {
        match seen.get_mut(x as usize) {
            Some(slot) if !*slot && (x as usize) < n => *slot = true,
            _ => return false,
        }
    }
    true
}

/// A hospitals/residents instance: `r` residents with complete preference
/// lists over `h` hospitals, and hospitals with complete lists over
/// residents plus a capacity each.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HospitalsInstance {
    residents: usize,
    hospitals: usize,
    /// `resident_lists[r]` — hospitals in preference order.
    resident_lists: Vec<Vec<u32>>,
    /// `hospital_ranks[h * residents + r]` — rank of resident `r` at `h`.
    hospital_ranks: Vec<Rank>,
    capacities: Vec<u32>,
}

impl HospitalsInstance {
    /// Build and validate an instance. Total capacity must be at least the
    /// number of residents so a full assignment exists.
    pub fn new(
        resident_lists: Vec<Vec<u32>>,
        hospital_lists: Vec<Vec<u32>>,
        capacities: Vec<u32>,
    ) -> Result<Self, PrefsError> {
        let residents = resident_lists.len();
        let hospitals = hospital_lists.len();
        if residents == 0 || hospitals == 0 {
            return Err(PrefsError::Empty);
        }
        if capacities.len() != hospitals {
            return Err(PrefsError::ShapeMismatch {
                what: "capacities",
                expected: hospitals,
                actual: capacities.len(),
            });
        }
        let mut seen = vec![false; hospitals.max(residents)];
        for (r, list) in resident_lists.iter().enumerate() {
            if !permutation_check(list, hospitals, &mut seen) {
                return Err(PrefsError::NotAPermutation {
                    owner: (0, r),
                    over: 1,
                });
            }
        }
        let mut hospital_ranks = vec![0 as Rank; hospitals * residents];
        for (h, list) in hospital_lists.iter().enumerate() {
            if !permutation_check(list, residents, &mut seen) {
                return Err(PrefsError::NotAPermutation {
                    owner: (1, h),
                    over: 0,
                });
            }
            for (rank, &r) in list.iter().enumerate() {
                hospital_ranks[h * residents + r as usize] = rank as Rank;
            }
        }
        let total: u64 = capacities.iter().map(|&c| c as u64).sum();
        if total < residents as u64 {
            return Err(PrefsError::TooLarge {
                what: "total capacity below resident count",
            });
        }
        Ok(HospitalsInstance {
            residents,
            hospitals,
            resident_lists,
            hospital_ranks,
            capacities,
        })
    }

    /// Number of residents.
    pub fn residents(&self) -> usize {
        self.residents
    }

    /// Number of hospitals.
    pub fn hospitals(&self) -> usize {
        self.hospitals
    }

    /// Capacity of hospital `h`.
    pub fn capacity(&self, h: u32) -> u32 {
        self.capacities[h as usize]
    }

    /// Rank of resident `r` at hospital `h` (0 = most preferred).
    #[inline]
    pub fn hospital_rank(&self, h: u32, r: u32) -> Rank {
        self.hospital_ranks[h as usize * self.residents + r as usize]
    }

    /// Resident `r`'s preference list over hospitals.
    #[inline]
    pub fn resident_list(&self, r: u32) -> &[u32] {
        &self.resident_lists[r as usize]
    }

    /// Rank of hospital `h` in resident `r`'s list.
    pub fn resident_rank(&self, r: u32, h: u32) -> Rank {
        self.resident_list(r)
            .iter()
            .position(|&x| x == h)
            .expect("complete list") as Rank
    }
}

/// A many-to-one assignment: each resident to one hospital, capacities
/// respected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    /// `hospital_of[r]` — the hospital resident `r` is assigned to.
    pub hospital_of: Vec<u32>,
}

impl Assignment {
    /// Residents assigned to hospital `h`, ascending.
    pub fn admitted(&self, h: u32) -> Vec<u32> {
        self.hospital_of
            .iter()
            .enumerate()
            .filter_map(|(r, &x)| if x == h { Some(r as u32) } else { None })
            .collect()
    }
}

/// Resident-proposing deferred acceptance. Returns the resident-optimal
/// stable assignment with proposal counts.
pub fn hospitals_residents(inst: &HospitalsInstance) -> (Assignment, GsStats) {
    let nr = inst.residents();
    let mut stats = GsStats::default();
    // Per hospital: currently-held residents (unsorted; we evict by rank).
    let mut held: Vec<Vec<u32>> = vec![Vec::new(); inst.hospitals()];
    let mut next = vec![0usize; nr];
    let mut free: Vec<u32> = (0..nr as u32).rev().collect();
    while let Some(r) = free.pop() {
        stats.rounds += 1;
        let h = inst.resident_list(r)[next[r as usize]];
        next[r as usize] += 1;
        stats.proposals += 1;
        let slot = &mut held[h as usize];
        if (slot.len() as u32) < inst.capacity(h) {
            slot.push(r);
            continue;
        }
        // Full: evict the worst-held if the newcomer beats them.
        let (worst_idx, &worst) = slot
            .iter()
            .enumerate()
            .max_by_key(|&(_, &x)| inst.hospital_rank(h, x))
            .expect("full hospital holds someone");
        if inst.hospital_rank(h, r) < inst.hospital_rank(h, worst) {
            slot[worst_idx] = r;
            free.push(worst);
        } else {
            free.push(r);
        }
    }
    let mut hospital_of = vec![u32::MAX; nr];
    for (h, slot) in held.iter().enumerate() {
        for &r in slot {
            hospital_of[r as usize] = h as u32;
        }
    }
    debug_assert!(hospital_of.iter().all(|&h| h != u32::MAX));
    (Assignment { hospital_of }, stats)
}

/// Find a blocking pair `(resident, hospital)`: the resident prefers `h`
/// to their assignment, and `h` has a free slot or prefers the resident to
/// its worst admittee.
pub fn find_hr_blocking_pair(
    inst: &HospitalsInstance,
    assignment: &Assignment,
) -> Option<(u32, u32)> {
    let mut worst_rank: Vec<Option<Rank>> = vec![None; inst.hospitals()];
    let mut load = vec![0u32; inst.hospitals()];
    for (r, &h) in assignment.hospital_of.iter().enumerate() {
        load[h as usize] += 1;
        let rank = inst.hospital_rank(h, r as u32);
        worst_rank[h as usize] = Some(worst_rank[h as usize].map_or(rank, |w: Rank| w.max(rank)));
    }
    for r in 0..inst.residents() as u32 {
        let assigned = assignment.hospital_of[r as usize];
        for &h in inst.resident_list(r) {
            if h == assigned {
                break; // Worse hospitals cannot block for r.
            }
            let has_room = load[h as usize] < inst.capacity(h);
            let beats_worst = worst_rank[h as usize].is_some_and(|w| inst.hospital_rank(h, r) < w);
            if has_room || beats_worst {
                return Some((r, h));
            }
        }
    }
    None
}

/// Is the assignment stable?
pub fn is_hr_stable(inst: &HospitalsInstance, assignment: &Assignment) -> bool {
    find_hr_blocking_pair(inst, assignment).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::gale_shapley;
    use kmatch_prefs::gen::uniform::uniform_bipartite;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_hr(nr: usize, nh: usize, rng: &mut ChaCha8Rng) -> HospitalsInstance {
        let mut caps: Vec<u32> = vec![1; nh];
        // Distribute extra capacity so Σ c >= nr.
        let mut total = nh as i64;
        while total < nr as i64 {
            caps[rng.gen_range(0..nh)] += 1;
            total += 1;
        }
        let perm = |n: usize, rng: &mut ChaCha8Rng| {
            let mut v: Vec<u32> = (0..n as u32).collect();
            v.shuffle(rng);
            v
        };
        let residents = (0..nr).map(|_| perm(nh, rng)).collect();
        let hospitals = (0..nh).map(|_| perm(nr, rng)).collect();
        HospitalsInstance::new(residents, hospitals, caps).unwrap()
    }

    #[test]
    fn outputs_are_stable_and_feasible() {
        let mut rng = ChaCha8Rng::seed_from_u64(91);
        for (nr, nh) in [(6usize, 3usize), (20, 4), (50, 7)] {
            let inst = random_hr(nr, nh, &mut rng);
            let (a, stats) = hospitals_residents(&inst);
            assert!(is_hr_stable(&inst, &a), "nr={nr}, nh={nh}");
            for h in 0..nh as u32 {
                assert!(a.admitted(h).len() as u32 <= inst.capacity(h));
            }
            assert!(stats.proposals <= (nr * nh) as u64);
        }
    }

    #[test]
    fn unit_capacities_reduce_to_smp() {
        // With capacity 1 everywhere and nr = nh, HR == GS exactly.
        let mut rng = ChaCha8Rng::seed_from_u64(92);
        let n = 12;
        let smp = uniform_bipartite(n, &mut rng);
        let residents: Vec<Vec<u32>> = (0..n as u32)
            .map(|m| smp.proposer_list(m).to_vec())
            .collect();
        let hospitals: Vec<Vec<u32>> = (0..n as u32)
            .map(|w| smp.responder_list(w).to_vec())
            .collect();
        let inst = HospitalsInstance::new(residents, hospitals, vec![1; n]).unwrap();
        let (a, _) = hospitals_residents(&inst);
        let gs = gale_shapley(&smp);
        for r in 0..n as u32 {
            assert_eq!(
                a.hospital_of[r as usize],
                gs.matching.partner_of_proposer(r)
            );
        }
    }

    #[test]
    fn blocking_pair_detected_on_bad_assignment() {
        // 2 residents, 2 hospitals, cap 1. r0: h0 > h1; r1: h0 > h1;
        // h0: r0 > r1. Assign r1->h0, r0->h1: (r0, h0) blocks.
        let inst = HospitalsInstance::new(
            vec![vec![0, 1], vec![0, 1]],
            vec![vec![0, 1], vec![0, 1]],
            vec![1, 1],
        )
        .unwrap();
        let bad = Assignment {
            hospital_of: vec![1, 0],
        };
        assert_eq!(find_hr_blocking_pair(&inst, &bad), Some((0, 0)));
        let (good, _) = hospitals_residents(&inst);
        assert_eq!(good.hospital_of, vec![0, 1]);
    }

    #[test]
    fn free_capacity_blocks() {
        // Hospital with spare room and a resident that prefers it: block.
        let inst =
            HospitalsInstance::new(vec![vec![0, 1]], vec![vec![0], vec![0]], vec![2, 2]).unwrap();
        let bad = Assignment {
            hospital_of: vec![1],
        };
        assert_eq!(find_hr_blocking_pair(&inst, &bad), Some((0, 0)));
    }

    #[test]
    fn validation_errors() {
        assert!(HospitalsInstance::new(vec![], vec![], vec![]).is_err());
        // Capacity shortfall.
        assert!(
            HospitalsInstance::new(vec![vec![0], vec![0]], vec![vec![0, 1]], vec![1],).is_err()
        );
        // Bad permutation.
        assert!(
            HospitalsInstance::new(vec![vec![0, 0]], vec![vec![0], vec![0]], vec![1, 1],).is_err()
        );
    }

    #[test]
    fn resident_optimality_spot_check() {
        // Each resident's outcome is at least as good as under any other
        // stable assignment — spot-check against exhaustive enumeration on
        // a tiny instance.
        let inst = HospitalsInstance::new(
            vec![vec![0, 1], vec![0, 1], vec![1, 0]],
            vec![vec![2, 0, 1], vec![1, 2, 0]],
            vec![2, 1],
        )
        .unwrap();
        let (best, _) = hospitals_residents(&inst);
        assert!(is_hr_stable(&inst, &best));
        // Enumerate all feasible assignments (2 hospitals, 3 residents).
        for bits in 0..8u32 {
            let hospital_of: Vec<u32> = (0..3).map(|r| (bits >> r) & 1).collect();
            let load0 = hospital_of.iter().filter(|&&h| h == 0).count();
            if load0 > 2 || (3 - load0) > 1 {
                continue;
            }
            let a = Assignment { hospital_of };
            if is_hr_stable(&inst, &a) {
                for r in 0..3u32 {
                    let via_best = inst.resident_rank(r, best.hospital_of[r as usize]);
                    let via_a = inst.resident_rank(r, a.hospital_of[r as usize]);
                    assert!(via_best <= via_a, "resident-optimality violated for {r}");
                }
            }
        }
    }
}
