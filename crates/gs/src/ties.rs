//! Stable marriage with ties (indifference).
//!
//! The paper's related work (§V-A) highlights Huang's preference models
//! "where indifference is allowed (i.e., a tie situation is allowed)" with
//! "four variations: weak, strong, super, and altra stable matchings".
//! This module implements the three standard tie-aware stability notions
//! for the bipartite case:
//!
//! * **weak** — a pair blocks only if *both* members strictly prefer each
//!   other. A weakly stable matching always exists: break ties arbitrarily
//!   and run GS ([`solve_weak`]).
//! * **strong** — a pair blocks if one member strictly prefers and the
//!   other does not strictly prefer its current partner (ties suffice on
//!   one side).
//! * **super** — a pair blocks if neither member strictly prefers its
//!   current partner (ties suffice on both sides). Super-stable matchings
//!   can fail to exist — the complete-indifference instance is the
//!   classic witness, exercised in the tests.

use kmatch_prefs::{PrefsError, Rank};

use crate::engine::gale_shapley;
use crate::matching::BipartiteMatching;
use kmatch_prefs::BipartiteInstance;

/// A bipartite instance with ties: each member's preferences are a list of
/// tie groups, best group first; members of one group are indifferent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TiedBipartiteInstance {
    n: usize,
    /// `rank0[m * n + w]` = tie-group index of responder `w` for proposer `m`.
    rank0: Vec<Rank>,
    /// `rank1[w * n + m]` = tie-group index of proposer `m` for responder `w`.
    rank1: Vec<Rank>,
    /// Original tie groups (used to materialize tie-broken instances).
    groups0: Vec<Vec<Vec<u32>>>,
    groups1: Vec<Vec<Vec<u32>>>,
}

impl TiedBipartiteInstance {
    /// Build from per-member tie groups; the concatenation of each
    /// member's groups must be a permutation of `0..n`.
    pub fn from_groups(
        side0: Vec<Vec<Vec<u32>>>,
        side1: Vec<Vec<Vec<u32>>>,
    ) -> Result<Self, PrefsError> {
        let n = side0.len();
        if n == 0 {
            return Err(PrefsError::Empty);
        }
        if side1.len() != n {
            return Err(PrefsError::ShapeMismatch {
                what: "tied bipartite side 1",
                expected: n,
                actual: side1.len(),
            });
        }
        let build = |side: &[Vec<Vec<u32>>], side_idx: usize| -> Result<Vec<Rank>, PrefsError> {
            let mut rank = vec![Rank::MAX; n * n];
            for (i, groups) in side.iter().enumerate() {
                let mut seen = 0usize;
                for (g, group) in groups.iter().enumerate() {
                    for &x in group {
                        if x as usize >= n || rank[i * n + x as usize] != Rank::MAX {
                            return Err(PrefsError::NotAPermutation {
                                owner: (side_idx, i),
                                over: 1 - side_idx,
                            });
                        }
                        rank[i * n + x as usize] = g as Rank;
                        seen += 1;
                    }
                }
                if seen != n {
                    return Err(PrefsError::NotAPermutation {
                        owner: (side_idx, i),
                        over: 1 - side_idx,
                    });
                }
            }
            Ok(rank)
        };
        let rank0 = build(&side0, 0)?;
        let rank1 = build(&side1, 1)?;
        Ok(TiedBipartiteInstance {
            n,
            rank0,
            rank1,
            groups0: side0,
            groups1: side1,
        })
    }

    /// Members per side.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Tie-group rank of responder `w` for proposer `m`.
    #[inline]
    pub fn proposer_rank(&self, m: u32, w: u32) -> Rank {
        self.rank0[m as usize * self.n + w as usize]
    }

    /// Tie-group rank of proposer `m` for responder `w`.
    #[inline]
    pub fn responder_rank(&self, w: u32, m: u32) -> Rank {
        self.rank1[w as usize * self.n + m as usize]
    }

    /// Materialize a strict instance by breaking every tie in index order
    /// (deterministic; any tie-breaking preserves weak stability of the
    /// GS result).
    pub fn break_ties(&self) -> BipartiteInstance {
        let flatten = |groups: &[Vec<Vec<u32>>]| -> Vec<Vec<u32>> {
            groups
                .iter()
                .map(|gs| {
                    gs.iter()
                        .flat_map(|g| {
                            let mut g = g.clone();
                            g.sort_unstable();
                            g
                        })
                        .collect()
                })
                .collect()
        };
        BipartiteInstance::from_lists(&flatten(&self.groups0), &flatten(&self.groups1))
            .expect("tie-broken groups form permutations")
    }
}

/// Random tied instance: draw a uniform order, then merge adjacent
/// entries into one tie group with probability `tie_prob`.
pub fn random_tied_bipartite(
    n: usize,
    tie_prob: f64,
    rng: &mut impl rand::Rng,
) -> TiedBipartiteInstance {
    use rand::seq::SliceRandom;
    assert!(n > 0, "n must be positive");
    assert!(
        (0.0..=1.0).contains(&tie_prob),
        "tie_prob must be a probability"
    );
    let side = |rng: &mut dyn rand::RngCore| -> Vec<Vec<Vec<u32>>> {
        (0..n)
            .map(|_| {
                let mut order: Vec<u32> = (0..n as u32).collect();
                order.shuffle(rng);
                let mut groups: Vec<Vec<u32>> = Vec::new();
                for x in order {
                    let extend = !groups.is_empty() && rand::Rng::gen_bool(rng, tie_prob);
                    if extend {
                        groups.last_mut().expect("non-empty").push(x);
                    } else {
                        groups.push(vec![x]);
                    }
                }
                groups
            })
            .collect()
    };
    let (a, b) = (side(rng), side(rng));
    TiedBipartiteInstance::from_groups(a, b).expect("generated groups partition 0..n")
}

/// Tie-aware stability notion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TieStability {
    /// Blocks need strict preference on both sides.
    Weak,
    /// Blocks need strict preference on one side, non-strict on the other.
    Strong,
    /// Blocks need non-strict preference on both sides.
    Super,
}

/// Find a blocking pair under the chosen notion, or `None`.
pub fn find_tied_blocking_pair(
    inst: &TiedBipartiteInstance,
    matching: &BipartiteMatching,
    notion: TieStability,
) -> Option<(u32, u32)> {
    let n = inst.n();
    assert_eq!(matching.n(), n, "matching size mismatch");
    for m in 0..n as u32 {
        let his = matching.partner_of_proposer(m);
        for w in 0..n as u32 {
            if w == his {
                continue;
            }
            let her = matching.partner_of_responder(w);
            let m_strict = inst.proposer_rank(m, w) < inst.proposer_rank(m, his);
            let m_weak = inst.proposer_rank(m, w) <= inst.proposer_rank(m, his);
            let w_strict = inst.responder_rank(w, m) < inst.responder_rank(w, her);
            let w_weak = inst.responder_rank(w, m) <= inst.responder_rank(w, her);
            let blocks = match notion {
                TieStability::Weak => m_strict && w_strict,
                TieStability::Strong => (m_strict && w_weak) || (m_weak && w_strict),
                TieStability::Super => m_weak && w_weak,
            };
            if blocks {
                return Some((m, w));
            }
        }
    }
    None
}

/// Is the matching stable under `notion`?
pub fn is_tied_stable(
    inst: &TiedBipartiteInstance,
    matching: &BipartiteMatching,
    notion: TieStability,
) -> bool {
    find_tied_blocking_pair(inst, matching, notion).is_none()
}

/// Solve for a **weakly** stable matching: break ties, run GS. Always
/// succeeds (the classic reduction).
pub fn solve_weak(inst: &TiedBipartiteInstance) -> BipartiteMatching {
    gale_shapley(&inst.break_ties()).matching
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 2×2 instance with full indifference on both sides.
    fn all_indifferent() -> TiedBipartiteInstance {
        let side = vec![vec![vec![0, 1]], vec![vec![0, 1]]];
        TiedBipartiteInstance::from_groups(side.clone(), side).unwrap()
    }

    #[test]
    fn weak_always_solvable_even_with_full_indifference() {
        let inst = all_indifferent();
        let m = solve_weak(&inst);
        assert!(is_tied_stable(&inst, &m, TieStability::Weak));
    }

    #[test]
    fn super_stable_may_not_exist() {
        // Complete indifference: any unmatched pair weakly prefers each
        // other, so every matching is super-blocked.
        let inst = all_indifferent();
        for partner in [vec![0u32, 1], vec![1, 0]] {
            let m = BipartiteMatching::from_proposer_partners(partner);
            assert!(!is_tied_stable(&inst, &m, TieStability::Super));
        }
    }

    #[test]
    fn strict_instance_notions_coincide() {
        // Without ties, weak = strong = super = classical stability.
        let side0 = vec![vec![vec![0], vec![1]], vec![vec![1], vec![0]]];
        let side1 = vec![vec![vec![0], vec![1]], vec![vec![1], vec![0]]];
        let inst = TiedBipartiteInstance::from_groups(side0, side1).unwrap();
        let m = solve_weak(&inst);
        for notion in [
            TieStability::Weak,
            TieStability::Strong,
            TieStability::Super,
        ] {
            assert!(is_tied_stable(&inst, &m, notion), "{notion:?}");
        }
    }

    #[test]
    fn stability_notions_are_nested() {
        // super-stable => strong-stable => weak-stable on any matching.
        let inst = TiedBipartiteInstance::from_groups(
            vec![
                vec![vec![0, 1], vec![2]],
                vec![vec![2], vec![0, 1]],
                vec![vec![1], vec![0], vec![2]],
            ],
            vec![
                vec![vec![0], vec![1, 2]],
                vec![vec![1, 2], vec![0]],
                vec![vec![2], vec![0, 1]],
            ],
        )
        .unwrap();
        for partners in [
            vec![0u32, 1, 2],
            vec![1, 2, 0],
            vec![2, 0, 1],
            vec![0, 2, 1],
        ] {
            let m = BipartiteMatching::from_proposer_partners(partners);
            let sup = is_tied_stable(&inst, &m, TieStability::Super);
            let strong = is_tied_stable(&inst, &m, TieStability::Strong);
            let weak = is_tied_stable(&inst, &m, TieStability::Weak);
            assert!(!sup || strong, "super implies strong");
            assert!(!strong || weak, "strong implies weak");
        }
    }

    #[test]
    fn random_tied_instances_nest_and_weak_solve() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(210);
        for _ in 0..20 {
            let inst = random_tied_bipartite(6, 0.4, &mut rng);
            let m = solve_weak(&inst);
            assert!(is_tied_stable(&inst, &m, TieStability::Weak));
            // Nesting on the solved matching too.
            let sup = is_tied_stable(&inst, &m, TieStability::Super);
            let strong = is_tied_stable(&inst, &m, TieStability::Strong);
            assert!(!sup || strong);
        }
    }

    #[test]
    fn validation_rejects_overlapping_groups() {
        let bad = vec![vec![vec![0], vec![0, 1]], vec![vec![0, 1]]];
        let good = vec![vec![vec![0, 1]], vec![vec![0, 1]]];
        assert!(TiedBipartiteInstance::from_groups(bad, good.clone()).is_err());
        // Missing member.
        let short = vec![vec![vec![0]], vec![vec![0, 1]]];
        assert!(TiedBipartiteInstance::from_groups(short, good).is_err());
    }

    #[test]
    fn break_ties_is_deterministic_and_consistent() {
        let inst = TiedBipartiteInstance::from_groups(
            vec![vec![vec![1, 0]], vec![vec![0], vec![1]]],
            vec![vec![vec![0, 1]], vec![vec![1], vec![0]]],
        )
        .unwrap();
        let strict = inst.break_ties();
        // Ties broken by index: group [1, 0] flattens to [0, 1].
        assert_eq!(strict.proposer_list(0), &[0, 1]);
        assert_eq!(strict.proposer_list(1), &[0, 1]);
        // Tie-group ranks survive where no tie existed.
        assert_eq!(inst.proposer_rank(1, 0), 0);
        assert_eq!(inst.proposer_rank(1, 1), 1);
    }
}
