//! The Gale–Shapley deferred-acceptance engine.
//!
//! Faithful to §II-A of the paper: the algorithm proceeds in *rounds*; in
//! each round every currently-unengaged proposer proposes to the most
//! preferred responder it has not yet proposed to, then every responder
//! keeps the best suitor seen so far ("maybe") and rejects the rest.
//! Engagements are provisional — a responder trades up whenever a better
//! suitor arrives, so responders improve monotonically while proposers
//! slide down their lists.
//!
//! Complexity: every proposer advances through its list at most once, so
//! the total number of proposals is at most `n²` (and at least `n`); both
//! bounds are exercised by the structured workloads in
//! `kmatch_prefs::gen::structured`.

use kmatch_prefs::BipartitePrefs;

use crate::matching::BipartiteMatching;
use crate::trace::GsEvent;

/// Instrumentation counters from one GS run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GsStats {
    /// Total proposals issued — the paper's "iterations of the matching
    /// process" (Theorem 3 bounds the sum of these over all bindings by
    /// `(k−1)·n²`).
    pub proposals: u64,
    /// Synchronous proposal rounds — the PRAM cost unit of §IV-C.
    pub rounds: u32,
}

/// Result of a GS run: the stable matching plus instrumentation, and the
/// event trace when requested.
#[derive(Debug, Clone)]
pub struct GsOutcome {
    /// The proposer-optimal stable matching.
    pub matching: BipartiteMatching,
    /// Proposal/round counters.
    pub stats: GsStats,
    /// Event log (only from [`gale_shapley_traced`]).
    pub trace: Option<Vec<GsEvent>>,
}

const FREE: u32 = u32::MAX;

fn run<P: BipartitePrefs>(prefs: &P, mut trace: Option<&mut Vec<GsEvent>>) -> GsOutcome {
    let n = prefs.n();
    assert!(n > 0, "empty instance");
    // next[m]: position in m's list of the next responder to propose to.
    let mut next = vec![0u32; n];
    // fiance[w]: current provisional proposer of w, or FREE.
    let mut fiance = vec![FREE; n];
    let mut stats = GsStats::default();

    // Free proposers processed in synchronized rounds to count rounds the
    // way §II-A describes; the matching itself is order-independent.
    let mut free: Vec<u32> = (0..n as u32).collect();
    let mut next_free: Vec<u32> = Vec::new();
    while !free.is_empty() {
        stats.rounds += 1;
        if let Some(t) = trace.as_deref_mut() {
            t.push(GsEvent::RoundStart {
                round: stats.rounds,
            });
        }
        for &m in &free {
            let list = prefs.proposer_list(m);
            let w = list[next[m as usize] as usize];
            next[m as usize] += 1;
            stats.proposals += 1;
            if let Some(t) = trace.as_deref_mut() {
                t.push(GsEvent::Propose {
                    proposer: m,
                    responder: w,
                });
            }
            let holder = fiance[w as usize];
            if holder == FREE {
                fiance[w as usize] = m;
                if let Some(t) = trace.as_deref_mut() {
                    t.push(GsEvent::Engage {
                        proposer: m,
                        responder: w,
                    });
                }
            } else if prefs.responder_prefers(w, m, holder) {
                fiance[w as usize] = m;
                next_free.push(holder);
                if let Some(t) = trace.as_deref_mut() {
                    t.push(GsEvent::Reject {
                        proposer: holder,
                        responder: w,
                    });
                    t.push(GsEvent::Engage {
                        proposer: m,
                        responder: w,
                    });
                }
            } else {
                next_free.push(m);
                if let Some(t) = trace.as_deref_mut() {
                    t.push(GsEvent::Reject {
                        proposer: m,
                        responder: w,
                    });
                }
            }
        }
        free.clear();
        std::mem::swap(&mut free, &mut next_free);
    }

    let mut partner = vec![0u32; n];
    for (w, &m) in fiance.iter().enumerate() {
        debug_assert_ne!(m, FREE, "GS always terminates with a perfect matching");
        partner[m as usize] = w as u32;
    }
    GsOutcome {
        matching: BipartiteMatching::from_proposer_partners(partner),
        stats,
        trace: None,
    }
}

/// Run proposer-proposing Gale–Shapley; returns the proposer-optimal stable
/// matching with proposal/round counts.
///
/// ```
/// use kmatch_gs::{gale_shapley, is_stable};
/// use kmatch_prefs::gen::paper::example1_first;
///
/// let inst = example1_first();
/// let out = gale_shapley(&inst);
/// assert!(is_stable(&inst, &out.matching));
/// assert_eq!(out.matching.partner_of_proposer(1), 0); // (m', w)
/// assert!(out.stats.proposals <= 4);                  // n² bound
/// ```
pub fn gale_shapley<P: BipartitePrefs>(prefs: &P) -> GsOutcome {
    run(prefs, None)
}

/// [`gale_shapley`] with a full event trace attached to the outcome.
pub fn gale_shapley_traced<P: BipartitePrefs>(prefs: &P) -> GsOutcome {
    let mut events = Vec::new();
    let mut out = run(prefs, Some(&mut events));
    out.trace = Some(events);
    out
}

/// The **responder-optimal** stable matching: run GS with the roles
/// swapped via a zero-copy [`kmatch_prefs::ReverseView`], then swap the
/// result back into the original orientation.
pub fn responder_optimal<P>(prefs: &P) -> GsOutcome
where
    P: BipartitePrefs + kmatch_prefs::ResponderListSlice,
{
    let rev = kmatch_prefs::ReverseView::new(prefs);
    let mut out = run(&rev, None);
    out.matching = out.matching.swapped();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmatch_prefs::gen::paper::{example1_first, example1_second};
    use kmatch_prefs::gen::structured::{cyclic_bipartite, identical_bipartite};
    use kmatch_prefs::gen::uniform::uniform_bipartite;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn example1_first_outcome() {
        // Paper: "m will then propose to w' to form a stable matching:
        // (m', w) and (m, w')".
        let out = gale_shapley(&example1_first());
        assert_eq!(out.matching.partner_of_proposer(1), 0); // (m', w)
        assert_eq!(out.matching.partner_of_proposer(0), 1); // (m, w')
        assert_eq!(out.stats.proposals, 3); // m→w, m'→w, then m→w'
    }

    #[test]
    fn example1_second_is_man_optimal() {
        // Paper: "The GS algorithm will generate one stable matching:
        // (m, w) and (m', w') in favor of men".
        let out = gale_shapley(&example1_second());
        assert_eq!(out.matching.partner_of_proposer(0), 0);
        assert_eq!(out.matching.partner_of_proposer(1), 1);
        assert_eq!(out.stats.proposals, 2);
        assert_eq!(out.stats.rounds, 1);
    }

    #[test]
    fn woman_optimal_via_swapped_instance() {
        // Running GS from the women's side on Example 1 (second lists)
        // yields the woman-optimal (m, w'), (m', w).
        let out = gale_shapley(&example1_second().swapped());
        // Proposers are now women; w (0) gets m' (1), w' (1) gets m (0).
        assert_eq!(out.matching.partner_of_proposer(0), 1);
        assert_eq!(out.matching.partner_of_proposer(1), 0);
    }

    #[test]
    fn identical_lists_hit_quadratic_proposals() {
        // Serial dictatorship: n(n+1)/2 proposals.
        for n in [1usize, 2, 5, 30] {
            let out = gale_shapley(&identical_bipartite(n));
            assert_eq!(out.stats.proposals, (n * (n + 1) / 2) as u64, "n = {n}");
        }
    }

    #[test]
    fn cyclic_lists_finish_in_one_round() {
        let out = gale_shapley(&cyclic_bipartite(64));
        assert_eq!(out.stats.proposals, 64);
        assert_eq!(out.stats.rounds, 1);
    }

    #[test]
    fn proposals_bounded_by_n_squared() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..20 {
            let inst = uniform_bipartite(40, &mut rng);
            let out = gale_shapley(&inst);
            assert!(out.stats.proposals <= 40 * 40);
            assert!(out.stats.proposals >= 40);
        }
    }

    #[test]
    fn output_is_stable_on_random_instances() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for _ in 0..20 {
            let inst = uniform_bipartite(25, &mut rng);
            let out = gale_shapley(&inst);
            assert!(crate::stability::is_stable(&inst, &out.matching));
        }
    }

    #[test]
    fn trace_records_paper_dialogue() {
        let out = gale_shapley_traced(&example1_first());
        let trace = out.trace.unwrap();
        // Round 1: both m and m' propose to w; w keeps m' (prefers m').
        assert!(trace.contains(&GsEvent::Propose {
            proposer: 0,
            responder: 0
        }));
        assert!(trace.contains(&GsEvent::Propose {
            proposer: 1,
            responder: 0
        }));
        assert!(trace.contains(&GsEvent::Reject {
            proposer: 0,
            responder: 0
        }));
        // Round 2: m proposes to w' and is accepted.
        assert!(trace.contains(&GsEvent::Propose {
            proposer: 0,
            responder: 1
        }));
        assert!(trace.contains(&GsEvent::Engage {
            proposer: 0,
            responder: 1
        }));
    }

    #[test]
    fn traced_matches_untraced() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let inst = uniform_bipartite(30, &mut rng);
        let a = gale_shapley(&inst);
        let b = gale_shapley_traced(&inst);
        assert_eq!(a.matching, b.matching);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn responder_optimal_matches_swapped_instance() {
        // The zero-copy ReverseView path must agree with running GS on the
        // deep-copied swapped instance.
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        for n in [2usize, 9, 33] {
            let inst = uniform_bipartite(n, &mut rng);
            let via_view = super::responder_optimal(&inst);
            let via_swap = gale_shapley(&inst.swapped()).matching.swapped();
            assert_eq!(via_view.matching, via_swap, "n = {n}");
            assert!(crate::stability::is_stable(&inst, &via_view.matching));
        }
        // On Example 1 (second lists) it is the woman-optimal matching.
        let out = super::responder_optimal(&example1_second());
        assert_eq!(out.matching.partner_of_proposer(0), 1);
        assert_eq!(out.matching.partner_of_proposer(1), 0);
    }

    #[test]
    fn single_member_instance() {
        let inst = identical_bipartite(1);
        let out = gale_shapley(&inst);
        assert_eq!(out.matching.partner_of_proposer(0), 0);
        assert_eq!(out.stats.proposals, 1);
    }
}
