//! The Gale–Shapley deferred-acceptance engine.
//!
//! Faithful to §II-A of the paper: the algorithm proceeds in *rounds*; in
//! each round every currently-unengaged proposer proposes to the most
//! preferred responder it has not yet proposed to, then every responder
//! keeps the best suitor seen so far ("maybe") and rejects the rest.
//! Engagements are provisional — a responder trades up whenever a better
//! suitor arrives, so responders improve monotonically while proposers
//! slide down their lists.
//!
//! Complexity: every proposer advances through its list at most once, so
//! the total number of proposals is at most `n²` (and at least `n`); both
//! bounds are exercised by the structured workloads in
//! `kmatch_prefs::gen::structured`.
//!
//! ## Engine structure
//!
//! The loop is compiled twice via the private `Tracer` parameter: the
//! untraced instantiation ([`gale_shapley`], [`GsWorkspace::solve`]) has
//! every trace hook inlined away — no `Option` checks anywhere in the
//! proposal loop — while the traced instantiation
//! ([`gale_shapley_traced`]) pushes [`GsEvent`]s. Both run the identical
//! round schedule, so matchings, proposal counts, and round counts agree
//! exactly; `gale_shapley_reference` preserves the original
//! runtime-checked implementation as a differential baseline.
//!
//! Three further fast-path properties matter at scale:
//!
//! * **Packed holder state.** Each responder's provisional engagement is
//!   one word, `rank << 32 | fiancé`, where `rank` is the fiancé's rank in
//!   the responder's list. The acceptance test is a single integer compare
//!   against the packed candidate (ranks are distinct within a list, so
//!   packed order is exactly rank order), and a free slot is the all-ones
//!   word, so any candidate wins the same compare — no vacancy branch.
//! * **Fused proposal entries.** Each proposal reads one packed word
//!   `rank << 32 | responder` via
//!   [`kmatch_prefs::BipartitePrefs::proposal_entry`]. Arena-backed
//!   preferences ([`kmatch_prefs::CsrPrefs`]) serve it with a single
//!   *sequential* load — proposers walk their entry rows left to right —
//!   so the inner loop's only random access is the `n`-word `best` array,
//!   which stays cache-resident long after the instance's `n²` tables do
//!   not. The reference engine instead performs one random list load plus
//!   up to two random rank-table loads per proposal.
//! * **Workspace reuse.** All four scratch arrays live in a
//!   [`GsWorkspace`]; [`GsWorkspace::solve`] only grows them, so a batch
//!   loop over same-sized instances performs no scratch allocation after
//!   the first solve. The only per-solve allocations are the two partner
//!   arrays owned by the returned matching.

use kmatch_obs::{Metrics, NoMetrics};
use kmatch_prefs::{BipartitePrefs, DeltaSide, PrefDelta, PrefOracle, UNRANKED};
use kmatch_trace::{reason, span, NoSpans, SpanSink};

use crate::incomplete::{PartialMatching, UNMATCHED};
use crate::matching::BipartiteMatching;
use crate::trace::GsEvent;

/// Instrumentation counters from one GS run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GsStats {
    /// Total proposals issued — the paper's "iterations of the matching
    /// process" (Theorem 3 bounds the sum of these over all bindings by
    /// `(k−1)·n²`).
    pub proposals: u64,
    /// Synchronous proposal rounds — the PRAM cost unit of §IV-C.
    pub rounds: u32,
}

/// Result of a GS run: the stable matching plus instrumentation, and the
/// event trace when requested.
#[derive(Debug, Clone)]
pub struct GsOutcome {
    /// The proposer-optimal stable matching.
    pub matching: BipartiteMatching,
    /// Proposal/round counters.
    pub stats: GsStats,
    /// Event log (only from [`gale_shapley_traced`]).
    pub trace: Option<Vec<GsEvent>>,
}

const FREE: u32 = u32::MAX;

/// Compile-time trace hook set; the `NoTrace` instantiation erases every
/// call site.
trait Tracer {
    fn round_start(&mut self, round: u32);
    fn propose(&mut self, proposer: u32, responder: u32);
    fn engage(&mut self, proposer: u32, responder: u32);
    fn reject(&mut self, proposer: u32, responder: u32);
}

/// Zero-sized tracer for the fast path.
struct NoTrace;

impl Tracer for NoTrace {
    #[inline(always)]
    fn round_start(&mut self, _round: u32) {}
    #[inline(always)]
    fn propose(&mut self, _proposer: u32, _responder: u32) {}
    #[inline(always)]
    fn engage(&mut self, _proposer: u32, _responder: u32) {}
    #[inline(always)]
    fn reject(&mut self, _proposer: u32, _responder: u32) {}
}

/// Tracer that appends to an event vector.
struct VecTrace<'a> {
    events: &'a mut Vec<GsEvent>,
}

impl Tracer for VecTrace<'_> {
    fn round_start(&mut self, round: u32) {
        self.events.push(GsEvent::RoundStart { round });
    }
    fn propose(&mut self, proposer: u32, responder: u32) {
        self.events.push(GsEvent::Propose {
            proposer,
            responder,
        });
    }
    fn engage(&mut self, proposer: u32, responder: u32) {
        self.events.push(GsEvent::Engage {
            proposer,
            responder,
        });
    }
    fn reject(&mut self, proposer: u32, responder: u32) {
        self.events.push(GsEvent::Reject {
            proposer,
            responder,
        });
    }
}

/// Reusable scratch buffers for the Gale–Shapley engine.
///
/// A workspace grows to the largest instance it has seen and never
/// shrinks; solving through one repeatedly is allocation-free in the
/// steady state. Workspaces are cheap to create and freely reusable
/// across unrelated instances of any size.
///
/// ```
/// use kmatch_gs::{gale_shapley, GsWorkspace};
/// use kmatch_prefs::gen::paper::example1_first;
///
/// let inst = example1_first();
/// let mut ws = GsWorkspace::new();
/// let fast = ws.solve(&inst);
/// assert_eq!(fast.matching, gale_shapley(&inst).matching);
/// ```
#[derive(Debug, Clone, Default)]
pub struct GsWorkspace {
    /// `next[m]`: position in `m`'s list of the next responder to try.
    next: Vec<u32>,
    /// `best[w]`: `rank << 32 | fiancé` for `w`'s provisional engagement
    /// (`rank` = the fiancé's rank in `w`'s list), or [`VACANT`] while
    /// free. Lower is better, and every real candidate beats [`VACANT`].
    best: Vec<u64>,
    /// Free proposers of the current round.
    free: Vec<u32>,
    /// Proposers rejected this round, i.e. next round's `free`.
    next_free: Vec<u32>,
    /// Side size of the last completed solve, or 0 when `next`/`best` do
    /// not hold a finished execution (never solved, or mid-solve). The
    /// warm-start gate: [`GsWorkspace::resolve_delta`] falls back to a
    /// cold solve unless this matches the incoming instance.
    solved_n: usize,
    /// Warm-start scratch: proposers scheduled for a full re-free.
    mark: Vec<bool>,
    /// Warm-start scratch: responders already regressed this cascade.
    wmark: Vec<bool>,
    /// Warm-start scratch: `fiance[m]` = responder held by proposer `m`
    /// in the previous solve (the inverse of `best`'s low words).
    fiance: Vec<u32>,
    /// Warm-start scratch: worklist of responders awaiting regression.
    rework: Vec<u32>,
    /// Warm-start scratch: counting-sort offsets into [`GsWorkspace::passer`]
    /// (`n + 1` entries; see `warm_core` for the post-fill convention).
    passer_off: Vec<u32>,
    /// Warm-start scratch: proposers grouped by responder — the proposers
    /// whose consumed list prefix contains each responder.
    passer: Vec<u32>,
}

/// Packed `best` entry of a responder with no provisional fiancé.
const VACANT: u64 = u64::MAX;

/// High-word mask: isolates the rank half of a packed entry.
const RANK_HI: u64 = 0xFFFF_FFFF_0000_0000;

/// Smallest packed candidate whose rank half is [`UNRANKED`]: any
/// candidate at or above this line comes from a proposer the responder
/// does not rank (truncated/incomplete oracles) and must be rejected
/// even against a vacant slot. Complete backends never produce such
/// entries, so the guard branch is never taken on the classic path.
const UNACCEPT_MIN: u64 = (UNRANKED as u64) << 32;

impl GsWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        GsWorkspace::default()
    }

    /// A workspace pre-sized for instances of up to `n` members per side.
    pub fn with_capacity(n: usize) -> Self {
        GsWorkspace {
            next: Vec::with_capacity(n),
            best: Vec::with_capacity(n),
            free: Vec::with_capacity(n),
            next_free: Vec::with_capacity(n),
            ..GsWorkspace::default()
        }
    }

    /// Prepare all buffers for an instance of size `n`. Returns whether
    /// any scratch buffer had to grow (the metrics fresh/reuse signal).
    fn reset(&mut self, n: usize) -> bool {
        let fresh = self.next.capacity() < n
            || self.best.capacity() < n
            || self.free.capacity() < n;
        self.solved_n = 0;
        self.next.clear();
        self.next.resize(n, 0);
        self.best.clear();
        self.best.resize(n, VACANT);
        self.free.clear();
        self.free.extend(0..n as u32);
        self.next_free.clear();
        fresh
    }

    /// Run proposer-proposing Gale–Shapley through this workspace's
    /// buffers (the zero-allocation fast path). Produces exactly the
    /// matching, proposal count, and round count of [`gale_shapley`].
    ///
    /// `prefs` may be any [`PrefOracle`] backend — a materialized
    /// [`kmatch_prefs::CsrPrefs`] or an implicit oracle
    /// ([`kmatch_prefs::RandomPermOracle`],
    /// [`kmatch_prefs::ScoreOracle`]) — as long as its lists are
    /// complete; truncated oracles go through
    /// [`GsWorkspace::solve_partial`].
    pub fn solve<P: PrefOracle>(&mut self, prefs: &P) -> GsOutcome {
        run_core(prefs, self, &mut NoTrace, &mut NoMetrics, &mut NoSpans)
    }

    /// [`GsWorkspace::solve`] with metric hooks. The engine records
    /// proposals, rejections, holder swaps, rounds, workspace
    /// fresh/reuse, and the per-solve summary; wall time is the
    /// front-end's job (engines stay clock-free). With
    /// [`kmatch_obs::NoMetrics`] this monomorphizes to exactly
    /// [`GsWorkspace::solve`].
    pub fn solve_metered<P: PrefOracle, M: Metrics>(
        &mut self,
        prefs: &P,
        metrics: &mut M,
    ) -> GsOutcome {
        run_core(prefs, self, &mut NoTrace, metrics, &mut NoSpans)
    }

    /// [`GsWorkspace::solve_metered`] that additionally emits a span
    /// timeline: a `gs.solve` span enclosing one `gs.round` span per
    /// proposal round (see [`kmatch_trace::span`]). Round spans are
    /// fine-grained and emitted only when `S::FINE` holds — the
    /// flight recorder opts out and records the `gs.solve` phase span
    /// alone. With [`kmatch_trace::NoSpans`] this monomorphizes to
    /// exactly [`GsWorkspace::solve_metered`].
    pub fn solve_spanned<P: PrefOracle, M: Metrics, S: SpanSink>(
        &mut self,
        prefs: &P,
        metrics: &mut M,
        spans: &mut S,
    ) -> GsOutcome {
        run_core(prefs, self, &mut NoTrace, metrics, spans)
    }

    /// Warm-start re-solve after an in-place preference edit.
    ///
    /// `prefs` must already reflect `deltas` (mutate the instance first,
    /// e.g. via `BipartiteInstance::apply_delta`), and this workspace must
    /// hold the finished execution of a previous [`GsWorkspace::solve`] /
    /// [`GsWorkspace::resolve_delta`] on the *pre-delta* version of the
    /// same instance. When those conditions cannot be verified cheaply
    /// (different side size, or no previous solve) the call silently
    /// degrades to a cold [`GsWorkspace::solve`].
    ///
    /// The warm path re-frees only the proposers whose outcome can have
    /// changed: proposers with rewritten rows, plus — transitively —
    /// anyone who has already passed a responder whose provisional
    /// engagement the edit dissolves. Every other proposer keeps its
    /// engagement and executes **zero** proposals. By the
    /// order-independence of deferred acceptance (McVitie–Wilson), the
    /// resumed execution reaches exactly the proposer-optimal matching of
    /// the post-delta instance, i.e. the matching a cold solve returns;
    /// only the proposal/round *counters* differ (the warm run skips the
    /// proposals whose outcome is already known).
    pub fn resolve_delta<P: BipartitePrefs + PrefOracle>(
        &mut self,
        prefs: &P,
        deltas: &[PrefDelta],
    ) -> GsOutcome {
        warm_core(prefs, self, deltas, &mut NoTrace, &mut NoMetrics, &mut NoSpans)
    }

    /// [`GsWorkspace::resolve_delta`] with metric hooks: records
    /// [`Metrics::warm_resolve`] (with the re-freed proposer count) on the
    /// warm path and [`Metrics::warm_fallback`] when it degrades to a
    /// cold solve.
    pub fn resolve_delta_metered<P: BipartitePrefs + PrefOracle, M: Metrics>(
        &mut self,
        prefs: &P,
        deltas: &[PrefDelta],
        metrics: &mut M,
    ) -> GsOutcome {
        warm_core(prefs, self, deltas, &mut NoTrace, metrics, &mut NoSpans)
    }

    /// [`GsWorkspace::resolve_delta_metered`] that additionally emits a
    /// span timeline: a `gs.warm.resolve` instant (arg = re-freed
    /// proposers) on the warm path, or a `gs.warm.fallback` instant
    /// carrying a [`kmatch_trace::reason`] code when it degrades to a
    /// cold solve, followed by the usual `gs.solve`/`gs.round` spans.
    pub fn resolve_delta_spanned<P: BipartitePrefs + PrefOracle, M: Metrics, S: SpanSink>(
        &mut self,
        prefs: &P,
        deltas: &[PrefDelta],
        metrics: &mut M,
        spans: &mut S,
    ) -> GsOutcome {
        warm_core(prefs, self, deltas, &mut NoTrace, metrics, spans)
    }

    /// Gale–Shapley over a possibly *incomplete* oracle (e.g.
    /// [`kmatch_prefs::TruncatedOracle`]): proposers whose lists
    /// exhaust stay unmatched, and responders reject proposers they do
    /// not rank, so the result is the proposer-optimal stable matching
    /// under §III-B mutual-acceptability semantics — exactly what
    /// [`crate::incomplete::smi_gale_shapley`] computes on the
    /// materialized mutual lists.
    pub fn solve_partial<P: PrefOracle>(&mut self, prefs: &P) -> (PartialMatching, GsStats) {
        self.solve_partial_metered(prefs, &mut NoMetrics)
    }

    /// [`GsWorkspace::solve_partial`] with metric hooks.
    pub fn solve_partial_metered<P: PrefOracle, M: Metrics>(
        &mut self,
        prefs: &P,
        metrics: &mut M,
    ) -> (PartialMatching, GsStats) {
        let n = prefs.agents();
        assert!(n > 0, "empty instance");
        let fresh = self.reset(n);
        metrics.workspace(fresh);
        let mut stats = GsStats::default();
        run_rounds(prefs, self, &mut NoTrace, metrics, &mut NoSpans, &mut stats);
        metrics.solve_done(true, stats.proposals);
        // A partial execution is not a warm-start basis: leave
        // `solved_n` cleared (done by `reset`).
        let mut partner_of_proposer = vec![UNMATCHED; n];
        let mut partner_of_responder = vec![UNMATCHED; n];
        for (w, &best) in self.best.iter().enumerate() {
            if best != VACANT {
                let m = best as u32;
                partner_of_proposer[m as usize] = w as u32;
                partner_of_responder[w] = m;
            }
        }
        (
            PartialMatching {
                partner_of_proposer,
                partner_of_responder,
            },
            stats,
        )
    }
}

/// The engine core, monomorphized per tracer, metrics sink, and span
/// sink.
fn run_core<P: PrefOracle, T: Tracer, M: Metrics, S: SpanSink>(
    prefs: &P,
    ws: &mut GsWorkspace,
    tracer: &mut T,
    metrics: &mut M,
    spans: &mut S,
) -> GsOutcome {
    let n = prefs.agents();
    assert!(n > 0, "empty instance");
    let fresh = ws.reset(n);
    metrics.workspace(fresh);
    let mut stats = GsStats::default();

    spans.begin(span::GS_SOLVE, n as u64);
    run_rounds(prefs, ws, tracer, metrics, spans, &mut stats);
    spans.end(span::GS_SOLVE);
    metrics.solve_done(true, stats.proposals);
    ws.solved_n = n;

    finish(ws, stats)
}

/// Shared epilogue: read the perfect matching out of `ws.best`.
fn finish(ws: &GsWorkspace, stats: GsStats) -> GsOutcome {
    let n = ws.best.len();
    let mut partner = vec![0u32; n];
    for (w, &best) in ws.best.iter().enumerate() {
        let m = best as u32;
        debug_assert_ne!(m, FREE, "GS always terminates with a perfect matching");
        partner[m as usize] = w as u32;
    }
    GsOutcome {
        matching: BipartiteMatching::from_proposer_partners(partner),
        stats,
        trace: None,
    }
}

/// The warm-start core: regress the smallest self-consistent set of
/// engagements, then resume the round loop.
///
/// The cascade maintains one invariant — *the surviving state is a valid
/// partial deferred-acceptance execution of the post-delta instance*:
/// for every un-re-freed proposer `m`, every responder ranked before
/// `next[m]` in `m`'s list either still holds a suitor she prefers to
/// `m` (clean responders: rows and holders unchanged, and her final
/// holder from the previous run was her best-ever suitor) or has been
/// regressed — and regressing a responder re-frees every proposer that
/// had already passed her, so no stale rejection survives.
fn warm_core<P: BipartitePrefs + PrefOracle, T: Tracer, M: Metrics, S: SpanSink>(
    prefs: &P,
    ws: &mut GsWorkspace,
    deltas: &[PrefDelta],
    tracer: &mut T,
    metrics: &mut M,
    spans: &mut S,
) -> GsOutcome {
    let n = prefs.n();
    assert!(n > 0, "empty instance");
    if ws.solved_n != n {
        metrics.warm_fallback();
        spans.instant(
            span::GS_WARM_FALLBACK,
            if ws.solved_n == 0 {
                reason::COLD_START
            } else {
                reason::SIZE_MISMATCH
            },
        );
        return run_core(prefs, ws, tracer, metrics, spans);
    }
    spans.begin(span::GS_SOLVE, n as u64);

    // Invert `best` into the proposer-indexed engagement table.
    ws.fiance.clear();
    ws.fiance.resize(n, FREE);
    for (w, &best) in ws.best.iter().enumerate() {
        let m = best as u32;
        debug_assert_ne!(m, FREE, "solved_n set ⇒ the previous run finished");
        ws.fiance[m as usize] = w as u32;
    }
    ws.mark.clear();
    ws.mark.resize(n, false);
    ws.wmark.clear();
    ws.wmark.resize(n, false);
    ws.rework.clear();

    // Seed the cascade from the rewritten rows.
    for delta in deltas {
        let row = delta.row() as usize;
        assert!(row < n, "delta names a row outside the instance");
        match delta.side() {
            DeltaSide::Proposer => {
                if !ws.mark[row] {
                    ws.mark[row] = true;
                    ws.rework.push(ws.fiance[row]);
                }
            }
            DeltaSide::Responder => ws.rework.push(row as u32),
        }
    }

    // Regress responders to a fixpoint. Processing responder `w` vacates
    // her slot and re-frees every not-yet-marked proposer that has
    // already consumed `w`'s position in its list; re-freeing an engaged
    // proposer dissolves his engagement, which regresses *his* responder
    // in turn. Unmarked proposers have unchanged rows, so ranks against
    // the post-delta `prefs` equal the ranks the previous run consumed.
    //
    // "Who already consumed w?" is answered from an inverted index built
    // once per warm call: a counting-sort of every proposer's consumed
    // prefix, grouped by responder. That costs O(n + Σ next[m]) — about
    // n·(1 + H_n) for uniform instances — where scanning all n proposers
    // per regressed responder would cost O(n · cascade), which dominated
    // the warm path on large instances. `next` is frozen during the
    // cascade (re-frees happen after), so prefix membership computed here
    // stays exact at pop time.
    if !ws.rework.is_empty() {
        ws.passer_off.clear();
        ws.passer_off.resize(n + 1, 0);
        for m in 0..n {
            for &w in &prefs.proposer_list(m as u32)[..ws.next[m] as usize] {
                ws.passer_off[w as usize + 1] += 1;
            }
        }
        for w in 0..n {
            ws.passer_off[w + 1] += ws.passer_off[w];
        }
        ws.passer.clear();
        ws.passer.resize(ws.passer_off[n] as usize, 0);
        for m in 0..n {
            for &w in &prefs.proposer_list(m as u32)[..ws.next[m] as usize] {
                ws.passer[ws.passer_off[w as usize] as usize] = m as u32;
                ws.passer_off[w as usize] += 1;
            }
        }
        // The fill advanced each offset to its group's end, so `w`'s
        // passers now live at `passer_off[w-1]..passer_off[w]` (0-based
        // start for `w == 0`).
    }
    while let Some(w) = ws.rework.pop() {
        let w_us = w as usize;
        if ws.wmark[w_us] {
            continue;
        }
        ws.wmark[w_us] = true;
        ws.best[w_us] = VACANT;
        let start = if w_us == 0 {
            0
        } else {
            ws.passer_off[w_us - 1] as usize
        };
        let end = ws.passer_off[w_us] as usize;
        for idx in start..end {
            let m = ws.passer[idx] as usize;
            if ws.mark[m] {
                continue;
            }
            ws.mark[m] = true;
            let wf = ws.fiance[m];
            if wf != FREE && !ws.wmark[wf as usize] {
                ws.rework.push(wf);
            }
        }
    }

    // Re-free the marked proposers from the top of their lists and
    // resume the ordinary round loop on the surviving state.
    ws.free.clear();
    ws.next_free.clear();
    let mut refreed = 0u64;
    for m in 0..n as u32 {
        if ws.mark[m as usize] {
            ws.next[m as usize] = 0;
            ws.free.push(m);
            refreed += 1;
        }
    }
    metrics.workspace(false);
    metrics.warm_resolve(refreed);
    spans.instant(span::GS_WARM_RESOLVE, refreed);
    let mut stats = GsStats::default();
    run_rounds(prefs, ws, tracer, metrics, spans, &mut stats);
    spans.end(span::GS_SOLVE);
    metrics.solve_done(true, stats.proposals);
    ws.solved_n = n;
    finish(ws, stats)
}

/// Event-ordered rounds: one pass per proposal, tracer hooks at the exact
/// points the reference engine emits them. With `NoTrace` every hook
/// vanishes, leaving a tight loop whose only work per proposal is the
/// fused half-width entry load (widened from the u32 arena row — the
/// hottest stream, now 16 entries per cache line), the packed compare,
/// and the free-list bookkeeping for the loser.
///
/// Two restructurings were built, measured, and *rejected* on the bench
/// host; the numbers live in DESIGN.md §6g so they are not re-attempted
/// blind. (1) Cmov-style selects ([`std::hint::select_unpredictable`])
/// for the accept/displace commit lost 15–20%: the accept branch is
/// mostly-reject and predicts far better than a forced
/// always-store-both-words dependency chain. (2) A software-pipelined
/// lookahead pass issuing each entry load 12 proposals early via
/// [`PrefOracle::prefetch_entry`] lost 4–9% at every CSR-representable
/// size: the consumed entry stream is only ~`n ln n` words per solve, so
/// it stays L2-resident up to n ≈ 4096 and the out-of-order window
/// already covers the remaining latency. The trait hook stays for
/// memory-tiered backends that can outrun the LLC.
fn run_rounds<P: PrefOracle, T: Tracer, M: Metrics, S: SpanSink>(
    prefs: &P,
    ws: &mut GsWorkspace,
    tracer: &mut T,
    metrics: &mut M,
    spans: &mut S,
    stats: &mut GsStats,
) {
    while !ws.free.is_empty() {
        stats.rounds += 1;
        tracer.round_start(stats.rounds);
        metrics.round();
        // Round spans are fine-grained (thousands per large solve, a
        // few hundred ns each): only sinks that declare `FINE` get
        // them, so the always-armed flight recorder stays cheap.
        if S::FINE {
            spans.begin(span::GS_ROUND, stats.rounds as u64);
        }
        for &m in &ws.free {
            let pos = ws.next[m as usize];
            // `pos >= list_len` only on truncated oracles (complete
            // backends engage before exhausting a list): the proposer
            // leaves the pool unmatched.
            if pos >= prefs.list_len(m) {
                continue;
            }
            // One fused load: `rank << 32 | responder` (see
            // `PrefOracle::entry`); swap the low word to get the
            // packed candidate from the responder's point of view.
            let entry = prefs.entry(m, pos);
            let w = entry as u32;
            ws.next[m as usize] += 1;
            stats.proposals += 1;
            tracer.propose(m, w);
            metrics.proposal();
            // Packed compare: rank order decides (ranks within a list
            // are distinct), and any candidate beats VACANT — unless
            // the responder does not rank the proposer at all
            // (UNACCEPT_MIN, incomplete oracles), which loses even to
            // a vacant slot.
            let cand = (entry & RANK_HI) | m as u64;
            let cur = ws.best[w as usize];
            if cand < cur && cand < UNACCEPT_MIN {
                ws.best[w as usize] = cand;
                let holder = cur as u32;
                if holder == FREE {
                    tracer.engage(m, w);
                } else {
                    ws.next_free.push(holder);
                    tracer.reject(holder, w);
                    tracer.engage(m, w);
                    metrics.holder_swap();
                    metrics.rejection();
                }
            } else {
                ws.next_free.push(m);
                tracer.reject(m, w);
                metrics.rejection();
            }
        }
        if S::FINE {
            spans.end(span::GS_ROUND);
        }
        ws.free.clear();
        std::mem::swap(&mut ws.free, &mut ws.next_free);
    }
}


/// Run proposer-proposing Gale–Shapley; returns the proposer-optimal stable
/// matching with proposal/round counts.
///
/// Allocates a transient [`GsWorkspace`]; batch callers should hold one
/// workspace and call [`GsWorkspace::solve`] directly.
///
/// ```
/// use kmatch_gs::{gale_shapley, is_stable};
/// use kmatch_prefs::gen::paper::example1_first;
///
/// let inst = example1_first();
/// let out = gale_shapley(&inst);
/// assert!(is_stable(&inst, &out.matching));
/// assert_eq!(out.matching.partner_of_proposer(1), 0); // (m', w)
/// assert!(out.stats.proposals <= 4);                  // n² bound
/// ```
pub fn gale_shapley<P: PrefOracle>(prefs: &P) -> GsOutcome {
    GsWorkspace::new().solve(prefs)
}

/// [`gale_shapley`] recording counters into `metrics`; batch callers
/// should hold a workspace and call [`GsWorkspace::solve_metered`].
pub fn gale_shapley_metered<P: PrefOracle, M: Metrics>(
    prefs: &P,
    metrics: &mut M,
) -> GsOutcome {
    GsWorkspace::new().solve_metered(prefs, metrics)
}

/// [`gale_shapley`] with a full event trace attached to the outcome.
pub fn gale_shapley_traced<P: PrefOracle>(prefs: &P) -> GsOutcome {
    let mut events = Vec::new();
    let mut ws = GsWorkspace::new();
    let mut out = run_core(
        prefs,
        &mut ws,
        &mut VecTrace {
            events: &mut events,
        },
        &mut NoMetrics,
        &mut NoSpans,
    );
    out.trace = Some(events);
    out
}

/// The original runtime-checked implementation, kept verbatim as a
/// differential baseline for the fast path (see `tests/prop_fastpath.rs`
/// and the `bench_throughput` benchmark).
pub fn gale_shapley_reference<P: BipartitePrefs>(prefs: &P) -> GsOutcome {
    run_reference(prefs, None)
}

fn run_reference<P: BipartitePrefs>(
    prefs: &P,
    mut trace: Option<&mut Vec<GsEvent>>,
) -> GsOutcome {
    let n = prefs.n();
    assert!(n > 0, "empty instance");
    // next[m]: position in m's list of the next responder to propose to.
    let mut next = vec![0u32; n];
    // fiance[w]: current provisional proposer of w, or FREE.
    let mut fiance = vec![FREE; n];
    let mut stats = GsStats::default();

    let mut free: Vec<u32> = (0..n as u32).collect();
    let mut next_free: Vec<u32> = Vec::new();
    while !free.is_empty() {
        stats.rounds += 1;
        if let Some(t) = trace.as_deref_mut() {
            t.push(GsEvent::RoundStart {
                round: stats.rounds,
            });
        }
        for &m in &free {
            let list = prefs.proposer_list(m);
            let w = list[next[m as usize] as usize];
            next[m as usize] += 1;
            stats.proposals += 1;
            if let Some(t) = trace.as_deref_mut() {
                t.push(GsEvent::Propose {
                    proposer: m,
                    responder: w,
                });
            }
            let holder = fiance[w as usize];
            if holder == FREE {
                fiance[w as usize] = m;
                if let Some(t) = trace.as_deref_mut() {
                    t.push(GsEvent::Engage {
                        proposer: m,
                        responder: w,
                    });
                }
            } else if prefs.responder_prefers(w, m, holder) {
                fiance[w as usize] = m;
                next_free.push(holder);
                if let Some(t) = trace.as_deref_mut() {
                    t.push(GsEvent::Reject {
                        proposer: holder,
                        responder: w,
                    });
                    t.push(GsEvent::Engage {
                        proposer: m,
                        responder: w,
                    });
                }
            } else {
                next_free.push(m);
                if let Some(t) = trace.as_deref_mut() {
                    t.push(GsEvent::Reject {
                        proposer: m,
                        responder: w,
                    });
                }
            }
        }
        free.clear();
        std::mem::swap(&mut free, &mut next_free);
    }

    let mut partner = vec![0u32; n];
    for (w, &m) in fiance.iter().enumerate() {
        debug_assert_ne!(m, FREE, "GS always terminates with a perfect matching");
        partner[m as usize] = w as u32;
    }
    GsOutcome {
        matching: BipartiteMatching::from_proposer_partners(partner),
        stats,
        trace: None,
    }
}

/// The **responder-optimal** stable matching: run GS with the roles
/// swapped via a zero-copy [`kmatch_prefs::ReverseView`], then swap the
/// result back into the original orientation.
pub fn responder_optimal<P>(prefs: &P) -> GsOutcome
where
    P: BipartitePrefs + kmatch_prefs::ResponderListSlice,
{
    let rev = kmatch_prefs::ReverseView::new(prefs);
    let mut out = gale_shapley(&rev);
    out.matching = out.matching.swapped();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmatch_prefs::gen::paper::{example1_first, example1_second};
    use kmatch_prefs::gen::structured::{cyclic_bipartite, identical_bipartite};
    use kmatch_prefs::gen::uniform::uniform_bipartite;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn example1_first_outcome() {
        // Paper: "m will then propose to w' to form a stable matching:
        // (m', w) and (m, w')".
        let out = gale_shapley(&example1_first());
        assert_eq!(out.matching.partner_of_proposer(1), 0); // (m', w)
        assert_eq!(out.matching.partner_of_proposer(0), 1); // (m, w')
        assert_eq!(out.stats.proposals, 3); // m→w, m'→w, then m→w'
    }

    #[test]
    fn example1_second_is_man_optimal() {
        // Paper: "The GS algorithm will generate one stable matching:
        // (m, w) and (m', w') in favor of men".
        let out = gale_shapley(&example1_second());
        assert_eq!(out.matching.partner_of_proposer(0), 0);
        assert_eq!(out.matching.partner_of_proposer(1), 1);
        assert_eq!(out.stats.proposals, 2);
        assert_eq!(out.stats.rounds, 1);
    }

    #[test]
    fn woman_optimal_via_swapped_instance() {
        // Running GS from the women's side on Example 1 (second lists)
        // yields the woman-optimal (m, w'), (m', w).
        let out = gale_shapley(&example1_second().swapped());
        // Proposers are now women; w (0) gets m' (1), w' (1) gets m (0).
        assert_eq!(out.matching.partner_of_proposer(0), 1);
        assert_eq!(out.matching.partner_of_proposer(1), 0);
    }

    #[test]
    fn identical_lists_hit_quadratic_proposals() {
        // Serial dictatorship: n(n+1)/2 proposals.
        for n in [1usize, 2, 5, 30] {
            let out = gale_shapley(&identical_bipartite(n));
            assert_eq!(out.stats.proposals, (n * (n + 1) / 2) as u64, "n = {n}");
        }
    }

    #[test]
    fn cyclic_lists_finish_in_one_round() {
        let out = gale_shapley(&cyclic_bipartite(64));
        assert_eq!(out.stats.proposals, 64);
        assert_eq!(out.stats.rounds, 1);
    }

    #[test]
    fn proposals_bounded_by_n_squared() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..20 {
            let inst = uniform_bipartite(40, &mut rng);
            let out = gale_shapley(&inst);
            assert!(out.stats.proposals <= 40 * 40);
            assert!(out.stats.proposals >= 40);
        }
    }

    #[test]
    fn output_is_stable_on_random_instances() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for _ in 0..20 {
            let inst = uniform_bipartite(25, &mut rng);
            let out = gale_shapley(&inst);
            assert!(crate::stability::is_stable(&inst, &out.matching));
        }
    }

    #[test]
    fn trace_records_paper_dialogue() {
        let out = gale_shapley_traced(&example1_first());
        let trace = out.trace.unwrap();
        // Round 1: both m and m' propose to w; w keeps m' (prefers m').
        assert!(trace.contains(&GsEvent::Propose {
            proposer: 0,
            responder: 0
        }));
        assert!(trace.contains(&GsEvent::Propose {
            proposer: 1,
            responder: 0
        }));
        assert!(trace.contains(&GsEvent::Reject {
            proposer: 0,
            responder: 0
        }));
        // Round 2: m proposes to w' and is accepted.
        assert!(trace.contains(&GsEvent::Propose {
            proposer: 0,
            responder: 1
        }));
        assert!(trace.contains(&GsEvent::Engage {
            proposer: 0,
            responder: 1
        }));
    }

    #[test]
    fn traced_matches_untraced() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let inst = uniform_bipartite(30, &mut rng);
        let a = gale_shapley(&inst);
        let b = gale_shapley_traced(&inst);
        assert_eq!(a.matching, b.matching);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn fast_path_matches_reference() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut ws = GsWorkspace::new();
        for n in [1usize, 2, 13, 40, 77] {
            let inst = uniform_bipartite(n, &mut rng);
            let fast = ws.solve(&inst);
            let reference = gale_shapley_reference(&inst);
            assert_eq!(fast.matching, reference.matching, "n = {n}");
            assert_eq!(fast.stats, reference.stats, "n = {n}");
        }
    }

    #[test]
    fn workspace_reuse_across_sizes() {
        // Shrinking and regrowing must not leak state between solves.
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let mut ws = GsWorkspace::with_capacity(64);
        let sizes = [50usize, 3, 64, 1, 17, 64];
        for n in sizes {
            let inst = uniform_bipartite(n, &mut rng);
            let fast = ws.solve(&inst);
            let reference = gale_shapley_reference(&inst);
            assert_eq!(fast.matching, reference.matching, "n = {n}");
            assert_eq!(fast.stats, reference.stats, "n = {n}");
        }
    }

    #[test]
    fn responder_optimal_matches_swapped_instance() {
        // The zero-copy ReverseView path must agree with running GS on the
        // deep-copied swapped instance.
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        for n in [2usize, 9, 33] {
            let inst = uniform_bipartite(n, &mut rng);
            let via_view = super::responder_optimal(&inst);
            let via_swap = gale_shapley(&inst.swapped()).matching.swapped();
            assert_eq!(via_view.matching, via_swap, "n = {n}");
            assert!(crate::stability::is_stable(&inst, &via_view.matching));
        }
        // On Example 1 (second lists) it is the woman-optimal matching.
        let out = super::responder_optimal(&example1_second());
        assert_eq!(out.matching.partner_of_proposer(0), 1);
        assert_eq!(out.matching.partner_of_proposer(1), 0);
    }

    #[test]
    fn metered_matches_untraced_and_counts_hold() {
        use kmatch_obs::SolverMetrics;
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut ws = GsWorkspace::new();
        let mut m = SolverMetrics::new();
        let mut expect_proposals = 0u64;
        for n in [1usize, 2, 17, 40] {
            let inst = uniform_bipartite(n, &mut rng);
            let plain = gale_shapley(&inst);
            let metered = ws.solve_metered(&inst, &mut m);
            assert_eq!(plain.matching, metered.matching, "n = {n}");
            assert_eq!(plain.stats, metered.stats, "n = {n}");
            expect_proposals += plain.stats.proposals;
        }
        assert_eq!(m.solves, 4);
        assert_eq!(m.solvable, 4);
        assert_eq!(m.proposals, expect_proposals);
        // Every proposal either ends rejected or holds the final slot:
        // rejections = proposals − n per instance, summed.
        assert_eq!(m.rejections, expect_proposals - (1 + 2 + 17 + 40));
        assert_eq!(m.workspace_fresh + m.workspace_reused, 4);
        assert!(m.workspace_fresh >= 1);
        assert_eq!(m.proposals_per_solve.count(), 4);
    }

    #[test]
    fn single_member_instance() {
        let inst = identical_bipartite(1);
        let out = gale_shapley(&inst);
        assert_eq!(out.matching.partner_of_proposer(0), 0);
        assert_eq!(out.stats.proposals, 1);
    }

    use rand::Rng;

    /// Draw one random delta against an `n × n` instance, using rows of a
    /// second random instance as `SetRow` payloads.
    fn random_delta(n: usize, donor: &kmatch_prefs::BipartiteInstance, rng: &mut impl Rng) -> PrefDelta {
        let side = if rng.gen_bool(0.5) {
            DeltaSide::Proposer
        } else {
            DeltaSide::Responder
        };
        let row = rng.gen_range(0..n) as u32;
        match rng.gen_range(0..3u32) {
            0 => PrefDelta::SetRow {
                side,
                row,
                prefs: match side {
                    DeltaSide::Proposer => donor.proposer_list(row).to_vec(),
                    DeltaSide::Responder => donor.responder_list(row).to_vec(),
                },
            },
            1 => PrefDelta::Swap {
                side,
                row,
                a: rng.gen_range(0..n) as u32,
                b: rng.gen_range(0..n) as u32,
            },
            _ => PrefDelta::Splice {
                side,
                row,
                from: rng.gen_range(0..n) as u32,
                to: rng.gen_range(0..n) as u32,
            },
        }
    }

    #[test]
    fn warm_resolve_matches_cold_over_random_deltas() {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let mut ws = GsWorkspace::new();
        for n in [1usize, 2, 8, 23, 40] {
            let mut inst = uniform_bipartite(n, &mut rng);
            let donor = uniform_bipartite(n, &mut rng);
            ws.solve(&inst);
            for step in 0..12 {
                let delta = random_delta(n, &donor, &mut rng);
                inst.apply_delta(&delta).unwrap();
                let warm = ws.resolve_delta(&inst, std::slice::from_ref(&delta));
                let cold = gale_shapley(&inst);
                assert_eq!(warm.matching, cold.matching, "n = {n}, step = {step}");
                assert!(crate::stability::is_stable(&inst, &warm.matching));
            }
        }
    }

    #[test]
    fn warm_resolve_accepts_multi_row_delta_batches() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut ws = GsWorkspace::new();
        let n = 19usize;
        let mut inst = uniform_bipartite(n, &mut rng);
        let donor = uniform_bipartite(n, &mut rng);
        ws.solve(&inst);
        for _ in 0..8 {
            let deltas: Vec<PrefDelta> =
                (0..3).map(|_| random_delta(n, &donor, &mut rng)).collect();
            for d in &deltas {
                inst.apply_delta(d).unwrap();
            }
            let warm = ws.resolve_delta(&inst, &deltas);
            assert_eq!(warm.matching, gale_shapley(&inst).matching);
        }
    }

    #[test]
    fn warm_resolve_with_no_deltas_replays_previous_matching() {
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let inst = uniform_bipartite(17, &mut rng);
        let mut ws = GsWorkspace::new();
        let cold = ws.solve(&inst);
        let warm = ws.resolve_delta(&inst, &[]);
        assert_eq!(warm.matching, cold.matching);
        assert_eq!(warm.stats.proposals, 0);
        assert_eq!(warm.stats.rounds, 0);
    }

    #[test]
    fn warm_resolve_falls_back_cold_on_size_mismatch() {
        use kmatch_obs::SolverMetrics;
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let mut ws = GsWorkspace::new();
        ws.solve(&uniform_bipartite(9, &mut rng));
        let other = uniform_bipartite(14, &mut rng);
        let mut m = SolverMetrics::new();
        let out = ws.resolve_delta_metered(&other, &[], &mut m);
        assert_eq!(out.matching, gale_shapley(&other).matching);
        assert_eq!(m.warm_fallbacks, 1);
        assert_eq!(m.warm_solves, 0);
        // A fresh workspace has no previous execution at all.
        let mut cold_ws = GsWorkspace::new();
        let out2 = cold_ws.resolve_delta_metered(&other, &[], &mut m);
        assert_eq!(out2.matching, out.matching);
        assert_eq!(m.warm_fallbacks, 2);
    }

    #[test]
    fn warm_resolve_refrees_few_proposers_on_one_row_delta() {
        use kmatch_obs::SolverMetrics;
        let mut rng = ChaCha8Rng::seed_from_u64(14);
        let n = 60usize;
        let mut inst = uniform_bipartite(n, &mut rng);
        let mut ws = GsWorkspace::new();
        ws.solve(&inst);
        let delta = PrefDelta::Swap {
            side: DeltaSide::Proposer,
            row: 7,
            a: (n - 1) as u32,
            b: (n - 2) as u32,
        };
        inst.apply_delta(&delta).unwrap();
        let cold = gale_shapley(&inst);
        let mut m = SolverMetrics::new();
        let warm = ws.resolve_delta_metered(&inst, std::slice::from_ref(&delta), &mut m);
        assert_eq!(warm.matching, cold.matching);
        assert_eq!(m.warm_solves, 1);
        // Only the cascade around row 7 re-runs; the warm run must issue
        // far fewer proposals than the full cold execution did.
        assert!(m.refreed_proposers < n as u64);
        assert!(
            warm.stats.proposals <= cold.stats.proposals,
            "warm replay ({}) exceeded the cold run ({})",
            warm.stats.proposals,
            cold.stats.proposals
        );
    }

    #[test]
    fn warm_resolve_output_is_stable_by_exhaustive_check() {
        // Brute-force cross-check at n ≤ 8: after each delta the warm
        // result must appear in the exhaustively enumerated stable set of
        // the *mutated* instance — and be its proposer-optimal element
        // (what cold GS returns).
        let mut rng = ChaCha8Rng::seed_from_u64(15);
        for n in [4usize, 6, 8] {
            let mut inst = uniform_bipartite(n, &mut rng);
            let donor = uniform_bipartite(n, &mut rng);
            let mut ws = GsWorkspace::new();
            ws.solve(&inst);
            for _ in 0..10 {
                let delta = random_delta(n, &donor, &mut rng);
                inst.apply_delta(&delta).unwrap();
                let warm = ws.resolve_delta(&inst, std::slice::from_ref(&delta));
                let all = crate::stability::all_stable_matchings(&inst);
                assert!(
                    all.contains(&warm.matching),
                    "warm result is not stable for the mutated instance (n = {n})"
                );
                assert_eq!(warm.matching, gale_shapley(&inst).matching);
            }
        }
    }
}
