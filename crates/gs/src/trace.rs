//! Event traces of a Gale–Shapley run.

/// One event of a traced GS execution.
///
/// Events record the deferred-acceptance dialogue of §II-A: proposals, the
/// "maybe" replies that create provisional engagements, and the rejections
/// (including a previous fiancé being displaced).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GsEvent {
    /// A new round of simultaneous proposals by all currently-free
    /// proposers begins (1-indexed).
    RoundStart {
        /// Round number, starting at 1.
        round: u32,
    },
    /// `proposer` proposes to `responder`.
    Propose {
        /// The proposing member.
        proposer: u32,
        /// The member receiving the proposal.
        responder: u32,
    },
    /// `responder` provisionally accepts `proposer` ("maybe").
    Engage {
        /// The accepted proposer.
        proposer: u32,
        /// The accepting responder.
        responder: u32,
    },
    /// `responder` rejects `proposer` — either an unsuccessful proposal or
    /// a displaced previous engagement.
    Reject {
        /// The rejected proposer.
        proposer: u32,
        /// The rejecting responder.
        responder: u32,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_compare() {
        assert_eq!(
            GsEvent::Propose {
                proposer: 0,
                responder: 1
            },
            GsEvent::Propose {
                proposer: 0,
                responder: 1
            }
        );
        assert_ne!(
            GsEvent::Engage {
                proposer: 0,
                responder: 1
            },
            GsEvent::Reject {
                proposer: 0,
                responder: 1
            }
        );
    }
}
