//! Stable marriage with incomplete lists (SMI), possibly unbalanced.
//!
//! The paper's §III-B leans on "incomplete preference lists (i.e., a
//! person can exclude some members)" for the roommates reduction; this
//! module provides the same generality on the bipartite side: proposers
//! and responders may find only some of the other side acceptable
//! (mutually), and the sides may have different sizes. A stable matching
//! always exists but may leave members unmatched; the classic
//! *Rural Hospitals* consequence — every stable matching matches exactly
//! the same set of people — is verified in the tests.

use kmatch_prefs::{PrefsError, Rank, UNRANKED};

use crate::engine::GsStats;

/// An SMI instance: `np` proposers and `nr` responders with mutual,
/// possibly-incomplete preference lists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmiInstance {
    np: usize,
    nr: usize,
    proposer_lists: Vec<Vec<u32>>,
    /// `responder_ranks[w * np + m]`, or [`UNRANKED`].
    responder_ranks: Vec<Rank>,
    /// `proposer_ranks[m * nr + w]`, or [`UNRANKED`].
    proposer_ranks: Vec<Rank>,
}

impl SmiInstance {
    /// Build from per-member acceptable lists (best first). Acceptability
    /// must be mutual: `w ∈ proposer_lists[m] ⟺ m ∈ responder_lists[w]`.
    pub fn from_lists(
        proposer_lists: Vec<Vec<u32>>,
        responder_lists: Vec<Vec<u32>>,
    ) -> Result<Self, PrefsError> {
        let np = proposer_lists.len();
        let nr = responder_lists.len();
        if np == 0 || nr == 0 {
            return Err(PrefsError::Empty);
        }
        let mut proposer_ranks = vec![UNRANKED; np * nr];
        for (m, list) in proposer_lists.iter().enumerate() {
            for (r, &w) in list.iter().enumerate() {
                if w as usize >= nr {
                    return Err(PrefsError::BadRoommatesList {
                        owner: m,
                        reason: "entry out of range",
                    });
                }
                if proposer_ranks[m * nr + w as usize] != UNRANKED {
                    return Err(PrefsError::BadRoommatesList {
                        owner: m,
                        reason: "duplicate entry",
                    });
                }
                proposer_ranks[m * nr + w as usize] = r as Rank;
            }
        }
        let mut responder_ranks = vec![UNRANKED; nr * np];
        for (w, list) in responder_lists.iter().enumerate() {
            for (r, &m) in list.iter().enumerate() {
                if m as usize >= np {
                    return Err(PrefsError::BadRoommatesList {
                        owner: w,
                        reason: "entry out of range",
                    });
                }
                if responder_ranks[w * np + m as usize] != UNRANKED {
                    return Err(PrefsError::BadRoommatesList {
                        owner: w,
                        reason: "duplicate entry",
                    });
                }
                responder_ranks[w * np + m as usize] = r as Rank;
            }
        }
        // Mutual acceptability.
        for m in 0..np {
            for w in 0..nr {
                let p_has = proposer_ranks[m * nr + w] != UNRANKED;
                let r_has = responder_ranks[w * np + m] != UNRANKED;
                if p_has != r_has {
                    return Err(PrefsError::AsymmetricAcceptability { a: m, b: w });
                }
            }
        }
        Ok(SmiInstance {
            np,
            nr,
            proposer_lists,
            responder_ranks,
            proposer_ranks,
        })
    }

    /// Number of proposers.
    pub fn proposers(&self) -> usize {
        self.np
    }

    /// Number of responders.
    pub fn responders(&self) -> usize {
        self.nr
    }

    /// Is the pair mutually acceptable?
    #[inline]
    pub fn acceptable(&self, m: u32, w: u32) -> bool {
        self.proposer_ranks[m as usize * self.nr + w as usize] != UNRANKED
    }

    /// Rank of `w` for proposer `m` ([`UNRANKED`] when unacceptable).
    #[inline]
    pub fn proposer_rank(&self, m: u32, w: u32) -> Rank {
        self.proposer_ranks[m as usize * self.nr + w as usize]
    }

    /// Rank of `m` for responder `w` ([`UNRANKED`] when unacceptable).
    #[inline]
    pub fn responder_rank(&self, w: u32, m: u32) -> Rank {
        self.responder_ranks[w as usize * self.np + m as usize]
    }
}

/// A partial matching: `u32::MAX` marks unmatched members.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartialMatching {
    /// Partner of each proposer, or `u32::MAX`.
    pub partner_of_proposer: Vec<u32>,
    /// Partner of each responder, or `u32::MAX`.
    pub partner_of_responder: Vec<u32>,
}

/// Unmatched marker.
pub const UNMATCHED: u32 = u32::MAX;

impl PartialMatching {
    /// Proposers with a partner.
    pub fn matched_proposers(&self) -> Vec<u32> {
        (0..self.partner_of_proposer.len() as u32)
            .filter(|&m| self.partner_of_proposer[m as usize] != UNMATCHED)
            .collect()
    }

    /// Responders with a partner.
    pub fn matched_responders(&self) -> Vec<u32> {
        (0..self.partner_of_responder.len() as u32)
            .filter(|&w| self.partner_of_responder[w as usize] != UNMATCHED)
            .collect()
    }
}

/// Proposer-proposing deferred acceptance for SMI: a proposer exhausted of
/// acceptable partners stays unmatched.
pub fn smi_gale_shapley(inst: &SmiInstance) -> (PartialMatching, GsStats) {
    let (np, nr) = (inst.proposers(), inst.responders());
    let mut stats = GsStats::default();
    let mut next = vec![0usize; np];
    let mut fiance = vec![UNMATCHED; nr];
    let mut free: Vec<u32> = (0..np as u32).rev().collect();
    while let Some(m) = free.pop() {
        stats.rounds += 1;
        loop {
            let list = &inst.proposer_lists[m as usize];
            let Some(&w) = list.get(next[m as usize]) else {
                break; // m stays unmatched.
            };
            next[m as usize] += 1;
            stats.proposals += 1;
            let holder = fiance[w as usize];
            if holder == UNMATCHED {
                fiance[w as usize] = m;
                break;
            }
            if inst.responder_rank(w, m) < inst.responder_rank(w, holder) {
                fiance[w as usize] = m;
                free.push(holder);
                break;
            }
        }
    }
    let mut partner_of_proposer = vec![UNMATCHED; np];
    for (w, &m) in fiance.iter().enumerate() {
        if m != UNMATCHED {
            partner_of_proposer[m as usize] = w as u32;
        }
    }
    (
        PartialMatching {
            partner_of_proposer,
            partner_of_responder: fiance,
        },
        stats,
    )
}

/// Find a blocking pair: a mutually-acceptable `(m, w)`, not matched to
/// each other, where `m` is unmatched or prefers `w`, and `w` is unmatched
/// or prefers `m`. (Comparisons against `UNRANKED = u32::MAX` make
/// "unmatched" the worst outcome automatically.)
pub fn find_smi_blocking_pair(
    inst: &SmiInstance,
    matching: &PartialMatching,
) -> Option<(u32, u32)> {
    for m in 0..inst.proposers() as u32 {
        let his = matching.partner_of_proposer[m as usize];
        let his_rank = if his == UNMATCHED {
            UNRANKED
        } else {
            inst.proposer_rank(m, his)
        };
        for &w in &inst.proposer_lists[m as usize] {
            if inst.proposer_rank(m, w) >= his_rank {
                break; // List is sorted; nothing better remains.
            }
            let her = matching.partner_of_responder[w as usize];
            let her_rank = if her == UNMATCHED {
                UNRANKED
            } else {
                inst.responder_rank(w, her)
            };
            if inst.responder_rank(w, m) < her_rank {
                return Some((m, w));
            }
        }
    }
    None
}

/// Is the partial matching stable (internally consistent, pairs
/// acceptable, no blocking pair)?
pub fn is_smi_stable(inst: &SmiInstance, matching: &PartialMatching) -> bool {
    for m in 0..inst.proposers() as u32 {
        let w = matching.partner_of_proposer[m as usize];
        if w != UNMATCHED
            && (!inst.acceptable(m, w) || matching.partner_of_responder[w as usize] != m)
        {
            return false;
        }
    }
    find_smi_blocking_pair(inst, matching).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// Random SMI: each pair acceptable with probability `p`, unbalanced
    /// sides allowed.
    fn random_smi(np: usize, nr: usize, p: f64, rng: &mut ChaCha8Rng) -> SmiInstance {
        loop {
            let mut accept = vec![false; np * nr];
            for cell in accept.iter_mut() {
                *cell = rng.gen_bool(p);
            }
            let mut p_lists = Vec::with_capacity(np);
            for m in 0..np {
                let mut list: Vec<u32> = (0..nr as u32)
                    .filter(|&w| accept[m * nr + w as usize])
                    .collect();
                list.shuffle(rng);
                p_lists.push(list);
            }
            let mut r_lists = Vec::with_capacity(nr);
            for w in 0..nr as u32 {
                let mut list: Vec<u32> = (0..np as u32)
                    .filter(|&m| accept[m as usize * nr + w as usize])
                    .collect();
                list.shuffle(rng);
                r_lists.push(list);
            }
            if let Ok(inst) = SmiInstance::from_lists(p_lists, r_lists) {
                return inst;
            }
        }
    }

    #[test]
    fn outputs_are_stable() {
        let mut rng = ChaCha8Rng::seed_from_u64(151);
        for (np, nr, p) in [
            (5usize, 5usize, 0.5),
            (8, 4, 0.6),
            (3, 9, 0.4),
            (10, 10, 0.2),
        ] {
            for _ in 0..10 {
                let inst = random_smi(np, nr, p, &mut rng);
                let (m, stats) = smi_gale_shapley(&inst);
                assert!(is_smi_stable(&inst, &m), "np={np}, nr={nr}");
                assert!(stats.proposals <= (np * nr) as u64);
            }
        }
    }

    #[test]
    fn rural_hospitals_same_matched_set() {
        // Every stable matching of an SMI instance matches the same
        // people: compare proposer-optimal with responder-optimal (the
        // reversed instance).
        let mut rng = ChaCha8Rng::seed_from_u64(152);
        for _ in 0..20 {
            let inst = random_smi(7, 7, 0.5, &mut rng);
            let (a, _) = smi_gale_shapley(&inst);
            // Responder-optimal: swap the roles.
            let p_lists: Vec<Vec<u32>> = (0..inst.responders() as u32)
                .map(|w| {
                    let mut l: Vec<u32> = (0..inst.proposers() as u32)
                        .filter(|&m| inst.acceptable(m, w))
                        .collect();
                    l.sort_by_key(|&m| inst.responder_rank(w, m));
                    l
                })
                .collect();
            let r_lists: Vec<Vec<u32>> = (0..inst.proposers() as u32)
                .map(|m| {
                    let mut l: Vec<u32> = (0..inst.responders() as u32)
                        .filter(|&w| inst.acceptable(m, w))
                        .collect();
                    l.sort_by_key(|&w| inst.proposer_rank(m, w));
                    l
                })
                .collect();
            let rev = SmiInstance::from_lists(p_lists, r_lists).unwrap();
            let (b, _) = smi_gale_shapley(&rev);
            // b's proposers are the original responders.
            assert_eq!(
                a.matched_proposers(),
                b.matched_responders(),
                "Rural Hospitals: same proposers matched in every stable matching"
            );
            assert_eq!(a.matched_responders(), b.matched_proposers());
        }
    }

    #[test]
    fn empty_lists_leave_unmatched() {
        let inst = SmiInstance::from_lists(vec![vec![0], vec![]], vec![vec![0]]).unwrap();
        let (m, _) = smi_gale_shapley(&inst);
        assert_eq!(m.partner_of_proposer, vec![0, UNMATCHED]);
        assert!(is_smi_stable(&inst, &m));
    }

    #[test]
    fn unbalanced_sides() {
        // 2 proposers, 1 responder who accepts both: someone stays single,
        // and only the responder's favorite is matched.
        let inst = SmiInstance::from_lists(vec![vec![0], vec![0]], vec![vec![1, 0]]).unwrap();
        let (m, _) = smi_gale_shapley(&inst);
        assert_eq!(m.partner_of_proposer, vec![UNMATCHED, 0]);
        assert!(is_smi_stable(&inst, &m));
    }

    #[test]
    fn mutuality_enforced() {
        let err = SmiInstance::from_lists(vec![vec![0]], vec![vec![]]).unwrap_err();
        assert!(matches!(err, PrefsError::AsymmetricAcceptability { .. }));
    }

    #[test]
    fn blocking_pair_detection() {
        // m0: w0 > w1; m1: w0; w0: m0 > m1; w1: m0.
        let inst =
            SmiInstance::from_lists(vec![vec![0, 1], vec![0]], vec![vec![0, 1], vec![0]]).unwrap();
        // Bad: m0—w1, m1—w0. (m0, w0) blocks.
        let bad = PartialMatching {
            partner_of_proposer: vec![1, 0],
            partner_of_responder: vec![1, 0],
        };
        assert_eq!(find_smi_blocking_pair(&inst, &bad), Some((0, 0)));
        let (good, _) = smi_gale_shapley(&inst);
        assert!(is_smi_stable(&inst, &good));
        assert_eq!(good.partner_of_proposer[0], 0);
    }
}
