//! # kmatch-serve — std-only live telemetry scrape server
//!
//! A deliberately small HTTP/1.1 server hand-rolled on [`std::net`]
//! (the workspace is hermetic: no registry access, so no hyper/axum).
//! It exposes the process-lifetime [`LiveRegistry`] plus the latest
//! published run report and flight-recorder trace snapshot:
//!
//! | Route       | Response                                               |
//! |-------------|--------------------------------------------------------|
//! | `/healthz`  | `200 ok` — liveness probe                              |
//! | `/metrics`  | Prometheus text exposition from the [`LiveRegistry`]   |
//! | `/report`   | latest `kmatch.run_report/v1` JSON (404 until one is published) |
//! | `/trace`    | latest `kmatch.trace/v1` JSON snapshot (404 until one is published) |
//! | `/shutdown` | `200` and initiates graceful server shutdown           |
//!
//! The server owns no solver state: the workload thread publishes
//! documents into a shared [`ServeState`] and the scrape side reads
//! them. Metrics flow through the registry's relaxed atomics, so a
//! scrape never blocks a chunk absorb and vice versa.
//!
//! Lifecycle: [`ScrapeServer::bind`] on an address (use port `0` for an
//! ephemeral port), then either [`ScrapeServer::run`] on the current
//! thread or [`ScrapeServer::spawn`] for a background thread plus a
//! [`ShutdownHandle`]. Shutdown is graceful: the flag is set, the
//! acceptor is poked awake with a loopback connection, in-flight
//! handler threads are joined, and `run` returns its [`ServeStats`].
//! Each accepted connection is served by a short-lived thread; beyond
//! [`ServeOptions::max_connections`] concurrent handlers the acceptor
//! answers `503 Service Unavailable` inline instead of queueing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use kmatch_obs::LiveRegistry;

/// Per-connection socket timeout. A scrape request is a handful of
/// bytes; anything slower than this is a stuck peer, not a client.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// Upper bound on request-head size (we never accept bodies).
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Shared document store the workload publishes into and the scrape
/// endpoints read from.
///
/// `/metrics` reads the [`LiveRegistry`] directly (atomics, never
/// blocked by publishing); `/report` and `/trace` serve the most
/// recently published JSON documents verbatim.
#[derive(Debug)]
pub struct ServeState {
    live: Arc<LiveRegistry>,
    report: Mutex<Option<String>>,
    trace: Mutex<Option<String>>,
}

impl ServeState {
    /// New state around the process-lifetime registry.
    pub fn new(live: Arc<LiveRegistry>) -> Self {
        ServeState {
            live,
            report: Mutex::new(None),
            trace: Mutex::new(None),
        }
    }

    /// The registry `/metrics` scrapes.
    pub fn live(&self) -> &Arc<LiveRegistry> {
        &self.live
    }

    /// Replace the document served at `/report` (expects
    /// `kmatch.run_report/v1` JSON).
    pub fn publish_report(&self, json: String) {
        *self.report.lock().expect("report slot poisoned") = Some(json);
    }

    /// Replace the document served at `/trace` (expects
    /// `kmatch.trace/v1` JSON).
    pub fn publish_trace(&self, json: String) {
        *self.trace.lock().expect("trace slot poisoned") = Some(json);
    }

    fn report_snapshot(&self) -> Option<String> {
        self.report.lock().expect("report slot poisoned").clone()
    }

    fn trace_snapshot(&self) -> Option<String> {
        self.trace.lock().expect("trace slot poisoned").clone()
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Maximum concurrent in-flight handler threads. Connections beyond
    /// the cap receive `503 Service Unavailable` immediately.
    pub max_connections: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            max_connections: 64,
        }
    }
}

/// Counters from one server lifetime, returned by [`ScrapeServer::run`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Connections dispatched to a handler.
    pub served: u64,
    /// Connections refused with `503` because the cap was reached.
    pub rejected: u64,
}

/// Sets the shutdown flag and wakes the blocked acceptor.
///
/// Cloneable and cheap: hand one to the workload thread (stop serving
/// when the run ends) and keep one for signal handling. Calling
/// [`ShutdownHandle::shutdown`] more than once is harmless.
#[derive(Debug, Clone)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ShutdownHandle {
    /// Request graceful shutdown: set the flag, then poke the acceptor
    /// awake with a throwaway loopback connection so `run` observes the
    /// flag without waiting for the next real scrape.
    pub fn shutdown(&self) {
        self.flag.store(true, Ordering::SeqCst);
        // Ignore failure: if the listener is already gone the acceptor
        // has exited and there is nothing to wake.
        let _ = TcpStream::connect_timeout(&self.addr, IO_TIMEOUT);
    }

    /// Whether shutdown has been requested — by any handle clone or by
    /// the `/shutdown` route. Workload loops poll this to stop producing
    /// once the server is going away.
    pub fn is_shutdown(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// The bound scrape server. See the crate docs for the route table.
#[derive(Debug)]
pub struct ScrapeServer {
    listener: TcpListener,
    state: Arc<ServeState>,
    opts: ServeOptions,
    shutdown: Arc<AtomicBool>,
}

impl ScrapeServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// prepare to serve `state`.
    pub fn bind(addr: &str, state: Arc<ServeState>, opts: ServeOptions) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        Ok(ScrapeServer {
            listener,
            state,
            opts,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The actual bound address (resolves port `0` to the real port).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can stop this server from another thread.
    pub fn shutdown_handle(&self) -> io::Result<ShutdownHandle> {
        Ok(ShutdownHandle {
            flag: Arc::clone(&self.shutdown),
            addr: self.local_addr()?,
        })
    }

    /// Serve until shutdown is requested (via a [`ShutdownHandle`] or
    /// the `/shutdown` route), then join in-flight handlers and return
    /// the lifetime stats. Blocks the calling thread.
    pub fn run(self) -> io::Result<ServeStats> {
        let addr = self.local_addr()?;
        let mut stats = ServeStats::default();
        let mut handlers: Vec<JoinHandle<()>> = Vec::new();
        let active = Arc::new(AtomicU64::new(0));
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let (stream, _) = match self.listener.accept() {
                Ok(conn) => conn,
                Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
                Err(err) => return Err(err),
            };
            if self.shutdown.load(Ordering::SeqCst) {
                // The wake-up poke (or a scrape racing shutdown):
                // close it unanswered and exit.
                drop(stream);
                break;
            }
            handlers.retain(|h| !h.is_finished());
            if active.load(Ordering::SeqCst) >= self.opts.max_connections as u64 {
                stats.rejected += 1;
                // Drain the request head before answering: closing a
                // socket with unread bytes sends RST, which would
                // discard the 503 from the peer's receive buffer.
                let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
                let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
                let _ = read_request_path(&stream);
                let _ = respond(
                    &stream,
                    503,
                    "Service Unavailable",
                    "text/plain; charset=utf-8",
                    "connection cap reached\n",
                );
                continue;
            }
            stats.served += 1;
            active.fetch_add(1, Ordering::SeqCst);
            let state = Arc::clone(&self.state);
            let flag = Arc::clone(&self.shutdown);
            let active = Arc::clone(&active);
            handlers.push(std::thread::spawn(move || {
                handle_connection(stream, &state, &flag, addr);
                active.fetch_sub(1, Ordering::SeqCst);
            }));
        }
        for handle in handlers {
            let _ = handle.join();
        }
        Ok(stats)
    }

    /// Run on a new background thread; returns the join handle (which
    /// yields the [`ServeStats`]) and a [`ShutdownHandle`].
    pub fn spawn(self) -> io::Result<(JoinHandle<io::Result<ServeStats>>, ShutdownHandle)> {
        let handle = self.shutdown_handle()?;
        let join = std::thread::spawn(move || self.run());
        Ok((join, handle))
    }
}

/// Serve one accepted connection: parse the request head, route, write
/// one response, close.
fn handle_connection(
    stream: TcpStream,
    state: &ServeState,
    shutdown: &AtomicBool,
    addr: SocketAddr,
) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let path = match read_request_path(&stream) {
        Some(path) => path,
        None => return, // unreadable / oversized / non-GET: just close
    };
    let _ = match path.as_str() {
        "/healthz" => respond(&stream, 200, "OK", "text/plain; charset=utf-8", "ok\n"),
        "/metrics" => respond(
            &stream,
            200,
            "OK",
            // The Prometheus text exposition content type.
            "text/plain; version=0.0.4; charset=utf-8",
            &state.live().to_prometheus(),
        ),
        "/report" => match state.report_snapshot() {
            Some(json) => respond(&stream, 200, "OK", "application/json", &json),
            None => respond(
                &stream,
                404,
                "Not Found",
                "text/plain; charset=utf-8",
                "no report published yet\n",
            ),
        },
        "/trace" => match state.trace_snapshot() {
            Some(json) => respond(&stream, 200, "OK", "application/json", &json),
            None => respond(
                &stream,
                404,
                "Not Found",
                "text/plain; charset=utf-8",
                "no trace published yet\n",
            ),
        },
        "/shutdown" => {
            let res = respond(
                &stream,
                200,
                "OK",
                "text/plain; charset=utf-8",
                "shutting down\n",
            );
            shutdown.store(true, Ordering::SeqCst);
            // Wake the acceptor so it observes the flag now rather
            // than on the next scrape.
            let _ = TcpStream::connect_timeout(&addr, IO_TIMEOUT);
            res
        }
        _ => respond(
            &stream,
            404,
            "Not Found",
            "text/plain; charset=utf-8",
            "unknown route\n",
        ),
    };
}

/// Read the request head and return the path of a `GET` request, or
/// `None` for anything malformed (other methods, oversized heads,
/// timeouts).
fn read_request_path(mut stream: &TcpStream) -> Option<String> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    while !contains_head_end(&buf) {
        if buf.len() >= MAX_REQUEST_BYTES {
            return None;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return None,
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let request_line = head.lines().next()?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next()?;
    let path = parts.next()?;
    if method != "GET" {
        return None;
    }
    // Strip any query string: routes are exact.
    let path = path.split('?').next().unwrap_or(path);
    Some(path.to_string())
}

fn contains_head_end(buf: &[u8]) -> bool {
    buf.windows(4).any(|w| w == b"\r\n\r\n")
}

/// Write one complete `Connection: close` HTTP/1.1 response.
fn respond(
    mut stream: &TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Minimal blocking HTTP GET against a scrape server: returns
/// `(status, body)`. This is the client half the CLI (`kmatch fetch`)
/// and the CI smoke use — std `TcpStream` only, no curl dependency.
pub fn http_get(addr: &str, path: &str, timeout_ms: u64) -> io::Result<(u16, String)> {
    let timeout = Duration::from_millis(timeout_ms.max(1));
    let sock_addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing"))?;
    let mut stream = TcpStream::connect_timeout(&sock_addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    parse_response(&response)
}

/// Split a raw HTTP/1.1 response into `(status, body)`.
fn parse_response(response: &str) -> io::Result<(u16, String)> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let status_line = response
        .lines()
        .next()
        .ok_or_else(|| bad("empty response"))?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_string())
        .ok_or_else(|| bad("response head never terminated"))?;
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spawn_server(opts: ServeOptions) -> (Arc<ServeState>, String, JoinHandle<io::Result<ServeStats>>, ShutdownHandle) {
        let state = Arc::new(ServeState::new(Arc::new(LiveRegistry::new())));
        let server = ScrapeServer::bind("127.0.0.1:0", Arc::clone(&state), opts).unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let (join, handle) = server.spawn().unwrap();
        (state, addr, join, handle)
    }

    #[test]
    fn routes_serve_health_metrics_report_trace() {
        let (state, addr, join, handle) = spawn_server(ServeOptions::default());

        let (status, body) = http_get(&addr, "/healthz", 2000).unwrap();
        assert_eq!((status, body.as_str()), (200, "ok\n"));

        let (status, body) = http_get(&addr, "/metrics", 2000).unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("kmatch_live_runs_total"), "{body}");
        assert!(body.contains("kmatch_theorem3_ratio"), "{body}");

        // Report and trace 404 until the workload publishes them.
        let (status, _) = http_get(&addr, "/report", 2000).unwrap();
        assert_eq!(status, 404);
        state.publish_report("{\"schema\":\"kmatch.run_report/v1\"}".to_string());
        let (status, body) = http_get(&addr, "/report", 2000).unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("run_report"));

        let (status, _) = http_get(&addr, "/trace", 2000).unwrap();
        assert_eq!(status, 404);
        state.publish_trace("{\"schema\":\"kmatch.trace/v1\"}".to_string());
        let (status, body) = http_get(&addr, "/trace", 2000).unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("kmatch.trace/v1"));

        let (status, _) = http_get(&addr, "/nope", 2000).unwrap();
        assert_eq!(status, 404);

        handle.shutdown();
        let stats = join.join().unwrap().unwrap();
        assert!(stats.served >= 7, "served {}", stats.served);
    }

    #[test]
    fn metrics_reflect_live_registry_updates() {
        let (state, addr, join, handle) = spawn_server(ServeOptions::default());
        state.live().observe_run("uniform", 1234);
        let (status, body) = http_get(&addr, "/metrics", 2000).unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("kmatch_live_runs_total 1"), "{body}");
        assert!(body.contains("kmatch_backend_uniform_runs_total 1"), "{body}");
        handle.shutdown();
        join.join().unwrap().unwrap();
    }

    #[test]
    fn connection_cap_zero_rejects_with_503() {
        let opts = ServeOptions { max_connections: 0 };
        let (_state, addr, join, handle) = spawn_server(opts);
        let (status, body) = http_get(&addr, "/healthz", 2000).unwrap();
        assert_eq!(status, 503);
        assert!(body.contains("connection cap"), "{body}");
        handle.shutdown();
        let stats = join.join().unwrap().unwrap();
        assert_eq!(stats.served, 0);
        assert!(stats.rejected >= 1);
    }

    #[test]
    fn shutdown_route_stops_the_server() {
        let (_state, addr, join, _handle) = spawn_server(ServeOptions::default());
        let (status, body) = http_get(&addr, "/shutdown", 2000).unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("shutting down"));
        let stats = join.join().unwrap().unwrap();
        assert_eq!(stats.served, 1);
    }

    #[test]
    fn shutdown_is_idempotent() {
        let (_state, _addr, join, handle) = spawn_server(ServeOptions::default());
        handle.shutdown();
        handle.shutdown();
        join.join().unwrap().unwrap();
    }

    #[test]
    fn response_parser_handles_status_and_body() {
        let (status, body) =
            parse_response("HTTP/1.1 404 Not Found\r\nContent-Length: 3\r\n\r\nno\n").unwrap();
        assert_eq!(status, 404);
        assert_eq!(body, "no\n");
        assert!(parse_response("garbage").is_err());
        assert!(parse_response("").is_err());
    }
}
