//! Zero-steady-state-allocation guarantee for the flight recorder.
//!
//! The ring buffer is fully preallocated at construction; recording —
//! including overwriting once the ring wraps — must never touch the
//! allocator. Measured with the shared [`kmatch_testsupport::CountingAlloc`]
//! the engine crates use.

use kmatch_obs::ManualClock;
use kmatch_testsupport::{allocations_in, CountingAlloc};
use kmatch_trace::{span, FlightRecorder, SpanSink};

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

#[test]
fn recording_allocates_nothing_even_after_wrap() {
    let clock = ManualClock::new();
    let mut rec = FlightRecorder::new(&clock, 256);
    let allocs = allocations_in(|| {
        // 40 full laps around the ring: fill, wrap, overwrite.
        for i in 0..(256u64 * 40) {
            clock.set(i);
            rec.begin(span::GS_ROUND, i);
            rec.instant(span::CACHE_MISS, 0);
            rec.end(span::GS_ROUND);
        }
    });
    assert_eq!(
        allocs, 0,
        "flight-recorder steady state must not touch the allocator"
    );
    assert_eq!(rec.len(), 256);
    assert!(rec.dropped() > 0, "the ring must actually have wrapped");
}

#[test]
fn counting_allocator_is_live() {
    // Sanity: the harness actually observes allocations — including the
    // flight recorder's own construction-time buffer.
    let clock = ManualClock::new();
    let allocs = allocations_in(|| {
        std::hint::black_box(FlightRecorder::new(&clock, 512));
    });
    assert!(allocs >= 1);
}
