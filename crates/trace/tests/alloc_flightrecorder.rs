//! Zero-steady-state-allocation guarantee for the flight recorder.
//!
//! The ring buffer is fully preallocated at construction; recording —
//! including overwriting once the ring wraps — must never touch the
//! allocator. Measured with the same counting `GlobalAlloc` wrapper the
//! engine crates use.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use kmatch_obs::ManualClock;
use kmatch_trace::{FlightRecorder, SpanSink};

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

// SAFETY: delegates directly to the system allocator; the counter is a
// thread-local increment with no allocation of its own.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// Allocations performed by `f` on this thread.
fn allocations_in(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.with(Cell::get);
    f();
    ALLOCS.with(Cell::get) - before
}

#[test]
fn recording_allocates_nothing_even_after_wrap() {
    let clock = ManualClock::new();
    let mut rec = FlightRecorder::new(&clock, 256);
    let allocs = allocations_in(|| {
        // 40 full laps around the ring: fill, wrap, overwrite.
        for i in 0..(256u64 * 40) {
            clock.set(i);
            rec.begin("gs.round", i);
            rec.instant("cache.miss", 0);
            rec.end("gs.round");
        }
    });
    assert_eq!(
        allocs, 0,
        "flight-recorder steady state must not touch the allocator"
    );
    assert_eq!(rec.len(), 256);
    assert!(rec.dropped() > 0, "the ring must actually have wrapped");
}

#[test]
fn counting_allocator_is_live() {
    // Sanity: the harness actually observes allocations — including the
    // flight recorder's own construction-time buffer.
    let clock = ManualClock::new();
    let allocs = allocations_in(|| {
        std::hint::black_box(FlightRecorder::new(&clock, 512));
    });
    assert!(allocs >= 1);
}
