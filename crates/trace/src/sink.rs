//! The [`SpanSink`] trait, the zero-cost [`NoSpans`] sink, and the
//! [`TraceEvent`] record shared by every recorder.

/// What a single [`TraceEvent`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened.
    Begin,
    /// The innermost open span closed.
    End,
    /// A point event with no duration.
    Instant,
}

/// One recorded event. `Copy` so ring buffers can preallocate and
/// overwrite in place without touching the allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Begin, end, or instant.
    pub kind: EventKind,
    /// A name from [`crate::span`] — interned `&'static str`, so
    /// recording never allocates.
    pub name: &'static str,
    /// Sink-sampled clock reading, nanoseconds.
    pub ts_ns: u64,
    /// Event-specific payload (round number, edge index, reason code…);
    /// `0` when unused. `end` events carry the arg of their `begin`
    /// counterpart only if the caller repeats it — recorders store what
    /// they are given.
    pub arg: u64,
}

impl TraceEvent {
    /// The placeholder a ring buffer is prefilled with.
    pub const EMPTY: TraceEvent = TraceEvent {
        kind: EventKind::Instant,
        name: "",
        ts_ns: 0,
        arg: 0,
    };
}

/// Receiver for span begin/end and instant events at engine phase
/// boundaries.
///
/// Mirrors the `Tracer`/`Metrics` discipline of this workspace: engines
/// take `&mut S` where `S: SpanSink` and call the hooks unconditionally;
/// with [`NoSpans`] every call inlines to nothing. `ENABLED` lets a call
/// site skip *argument preparation* that would otherwise run even for
/// the no-op sink (e.g. formatting or counting work done only to feed a
/// span arg).
pub trait SpanSink {
    /// `false` for [`NoSpans`]; lets call sites gate arg-preparation
    /// work at compile time.
    const ENABLED: bool;

    /// Whether this sink admits *fine-grained* spans — the per-round
    /// `gs.round` class, emitted thousands of times per large solve
    /// (~2 800 rounds at n = 2000, each a few hundred nanoseconds).
    /// Engines gate those emissions on `S::FINE`, so a sink that opts
    /// out pays nothing for them, not even the call. Defaults to `true`
    /// (full fidelity); the always-armed
    /// [`FlightRecorder`](crate::FlightRecorder) sets it to `false` so
    /// it can stay within its overhead budget — timestamping a
    /// sub-microsecond round costs more than the round itself, which no
    /// black-box recorder can afford. Phase-level spans (solve, Irving
    /// phases, binding edges, batch chunks) and instants are never
    /// gated.
    const FINE: bool = true;

    /// Open a span named `name` (a [`crate::span`] constant).
    fn begin(&mut self, name: &'static str, arg: u64);

    /// Close the innermost open span. `name` must equal the matching
    /// `begin`'s name — [`check_well_formed`] enforces this for
    /// recorded streams.
    fn end(&mut self, name: &'static str);

    /// Record a point event.
    fn instant(&mut self, name: &'static str, arg: u64);
}

/// The sink that compiles to nothing: all hooks are empty
/// `#[inline(always)]` bodies, so `SpanSink`-generic engines
/// monomorphized with `NoSpans` emit exactly the pre-instrumentation
/// machine code. The counting-allocator suites in `kmatch-gs` and
/// `kmatch-roommates` pin the allocation part of that claim.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoSpans;

impl SpanSink for NoSpans {
    const ENABLED: bool = false;
    const FINE: bool = false;

    #[inline(always)]
    fn begin(&mut self, _name: &'static str, _arg: u64) {}

    #[inline(always)]
    fn end(&mut self, _name: &'static str) {}

    #[inline(always)]
    fn instant(&mut self, _name: &'static str, _arg: u64) {}
}

/// Check that a recorded event stream is well-formed: every `end`
/// matches the innermost open `begin` (strict nesting), no span is left
/// open, and timestamps never go backwards. Returns a description of
/// the first violation.
///
/// Flight-recorder dumps that overwrote their oldest events legitimately
/// start mid-stream; pass `allow_truncated_head = true` to accept `end`
/// events whose `begin` fell off the front. Such orphan ends are *not*
/// confined to the head of the dump: when the ring drops `B1 B2` from
/// `B1 B2 E2 B3 E3 E1`, the surviving `E1` closes a dropped span only
/// after the complete `B3 E3` — so any `end` arriving on an empty stack
/// is treated as closing a dropped begin. Crossed ends (a name that
/// mismatches the innermost open span) and backward timestamps stay
/// violations in both modes.
pub fn check_well_formed(events: &[TraceEvent], allow_truncated_head: bool) -> Result<(), String> {
    let mut stack: Vec<&'static str> = Vec::new();
    let mut last_ts = 0u64;
    for (i, ev) in events.iter().enumerate() {
        if ev.ts_ns < last_ts {
            return Err(format!(
                "event {i} ({:?} {:?}): timestamp {} went backwards (previous {})",
                ev.kind, ev.name, ev.ts_ns, last_ts
            ));
        }
        last_ts = ev.ts_ns;
        match ev.kind {
            EventKind::Begin => stack.push(ev.name),
            EventKind::End => match stack.pop() {
                Some(open) if open == ev.name => {}
                Some(open) => {
                    return Err(format!(
                        "event {i}: end {:?} does not match open span {open:?}",
                        ev.name
                    ));
                }
                None if allow_truncated_head => {}
                None => {
                    return Err(format!("event {i}: end {:?} with no open span", ev.name));
                }
            },
            EventKind::Instant => {}
        }
    }
    if let Some(open) = stack.pop() {
        return Err(format!("span {open:?} left open at end of stream"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, name: &'static str, ts_ns: u64) -> TraceEvent {
        TraceEvent {
            kind,
            name,
            ts_ns,
            arg: 0,
        }
    }

    #[test]
    fn nospans_is_zero_sized_and_disabled() {
        const {
            assert!(std::mem::size_of::<NoSpans>() == 0);
            assert!(!NoSpans::ENABLED);
            assert!(!NoSpans::FINE);
        }
        let mut s = NoSpans;
        s.begin("x", 1);
        s.instant("y", 2);
        s.end("x");
    }

    #[test]
    fn well_formed_accepts_nested_stream() {
        let events = [
            ev(EventKind::Begin, "a", 0),
            ev(EventKind::Begin, "b", 1),
            ev(EventKind::Instant, "i", 1),
            ev(EventKind::End, "b", 2),
            ev(EventKind::End, "a", 3),
        ];
        check_well_formed(&events, false).unwrap();
    }

    #[test]
    fn well_formed_rejects_violations() {
        let crossed = [
            ev(EventKind::Begin, "a", 0),
            ev(EventKind::Begin, "b", 1),
            ev(EventKind::End, "a", 2),
        ];
        assert!(check_well_formed(&crossed, false)
            .unwrap_err()
            .contains("does not match"));

        let dangling = [ev(EventKind::End, "a", 0)];
        assert!(check_well_formed(&dangling, false)
            .unwrap_err()
            .contains("no open span"));

        let open = [ev(EventKind::Begin, "a", 0)];
        assert!(check_well_formed(&open, false)
            .unwrap_err()
            .contains("left open"));

        let backwards = [
            ev(EventKind::Instant, "a", 5),
            ev(EventKind::Instant, "b", 4),
        ];
        assert!(check_well_formed(&backwards, false)
            .unwrap_err()
            .contains("backwards"));
    }

    #[test]
    fn truncated_head_tolerated_only_when_allowed() {
        // A ring that wrapped mid-span starts with orphan ends.
        let wrapped = [
            ev(EventKind::End, "b", 0),
            ev(EventKind::End, "a", 1),
            ev(EventKind::Begin, "c", 2),
            ev(EventKind::End, "c", 3),
        ];
        check_well_formed(&wrapped, true).unwrap();
        assert!(check_well_formed(&wrapped, false).is_err());
        // Orphan ends also appear *after* complete spans when the ring
        // dropped their enclosing begins (suffix of B1 B2 E2 B3 E3 E1):
        let late_orphan = [
            ev(EventKind::End, "b", 0),
            ev(EventKind::Begin, "c", 1),
            ev(EventKind::End, "c", 2),
            ev(EventKind::End, "a", 3),
        ];
        check_well_formed(&late_orphan, true).unwrap();
        assert!(check_well_formed(&late_orphan, false).is_err());
        // A crossed end is a violation even in truncated mode.
        let crossed = [
            ev(EventKind::Begin, "c", 0),
            ev(EventKind::End, "d", 1),
        ];
        assert!(check_well_formed(&crossed, true).is_err());
    }
}
