//! The two real sinks: an unbounded [`TraceRecorder`] and the
//! fixed-capacity [`FlightRecorder`] ring buffer.

use kmatch_obs::Clock;

use crate::export::TraceTrack;
use crate::sink::{EventKind, SpanSink, TraceEvent};

/// A point-in-time copy of an armed [`FlightRecorder`] ring — the
/// snapshot a live endpoint (`kmatch serve`'s `/trace`) takes while the
/// recorder keeps running. Taking a snapshot needs only `&self`, so a
/// ring behind a mutex can be photographed between workload iterations
/// without disturbing it.
#[derive(Debug, Clone)]
pub struct RingSnapshot {
    /// Ring capacity at snapshot time.
    pub capacity: usize,
    /// Events lost to overwriting before the snapshot.
    pub dropped: u64,
    /// The surviving events, oldest first.
    pub events: Vec<TraceEvent>,
}

impl RingSnapshot {
    /// Package the snapshot as one export track (the `dropped` count
    /// rides along as the track label suffix when nonzero, so a wrapped
    /// ring is visible in the exported timeline).
    pub fn into_track(self, tid: u64, label: &str) -> TraceTrack {
        let label = if self.dropped > 0 {
            format!("{label} (dropped {})", self.dropped)
        } else {
            label.to_string()
        };
        TraceTrack {
            tid,
            label,
            events: self.events,
        }
    }
}

/// Unbounded event log. Timestamps come from the injected [`Clock`],
/// taken by reference so one shared clock (e.g. a
/// [`ManualClock`](kmatch_obs::ManualClock)) can drive several
/// recorders deterministically.
#[derive(Debug)]
pub struct TraceRecorder<'c, C: Clock> {
    clock: &'c C,
    events: Vec<TraceEvent>,
}

impl<'c, C: Clock> TraceRecorder<'c, C> {
    /// New empty recorder sampling `clock`.
    pub fn new(clock: &'c C) -> Self {
        TraceRecorder {
            clock,
            events: Vec::new(),
        }
    }

    /// Everything recorded so far, in arrival order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Take the recorded events, leaving the recorder empty.
    pub fn take(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }

    #[inline]
    fn push(&mut self, kind: EventKind, name: &'static str, arg: u64) {
        self.events.push(TraceEvent {
            kind,
            name,
            ts_ns: self.clock.now_ns(),
            arg,
        });
    }
}

impl<C: Clock> SpanSink for TraceRecorder<'_, C> {
    const ENABLED: bool = true;

    #[inline]
    fn begin(&mut self, name: &'static str, arg: u64) {
        self.push(EventKind::Begin, name, arg);
    }

    #[inline]
    fn end(&mut self, name: &'static str) {
        self.push(EventKind::End, name, 0);
    }

    #[inline]
    fn instant(&mut self, name: &'static str, arg: u64) {
        self.push(EventKind::Instant, name, arg);
    }
}

/// Fixed-capacity ring buffer keeping the **last N** events.
///
/// The buffer is fully allocated at construction (`capacity` slots of
/// the `Copy` type [`TraceEvent`]); recording overwrites the oldest
/// slot in place once full, so the steady state allocates nothing —
/// suitable for leaving armed on long runs and dumping only when
/// something goes wrong. A capacity of `0` records nothing and counts
/// every event as dropped.
///
/// Because it is meant to stay armed, the flight recorder declares
/// [`SpanSink::FINE`]` = false`: engines monomorphized directly over it
/// skip the per-round `gs.round` spans and record phase-level events
/// only. At n = 2000 a GS solve runs ~2 800 rounds of a few hundred
/// nanoseconds each; clock-stamping every one costs more than the solve
/// itself, which a black-box recorder cannot afford. For round-level
/// zoom use the unbounded [`TraceRecorder`]. Wrappers that *forward*
/// into a ring (e.g. an enum over both recorders) make their own `FINE`
/// choice — the ring stores whatever it is handed.
#[derive(Debug)]
pub struct FlightRecorder<'c, C: Clock> {
    clock: &'c C,
    buf: Vec<TraceEvent>,
    /// Index of the oldest live event.
    head: usize,
    /// Live events (`<= buf.len()`).
    len: usize,
    /// Events overwritten (or discarded, for capacity 0) since
    /// construction.
    dropped: u64,
}

impl<'c, C: Clock> FlightRecorder<'c, C> {
    /// New recorder with room for the last `capacity` events, sampling
    /// `clock`. All allocation happens here.
    pub fn new(clock: &'c C, capacity: usize) -> Self {
        FlightRecorder {
            clock,
            buf: vec![TraceEvent::EMPTY; capacity],
            head: 0,
            len: 0,
            dropped: 0,
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Live events currently held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing has been recorded (or everything was dropped).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Events lost to overwriting since construction.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The surviving events, oldest first. Allocates the returned `Vec`
    /// — call this after the run, not during it.
    pub fn events(&self) -> Vec<TraceEvent> {
        let cap = self.buf.len();
        (0..self.len)
            .map(|i| self.buf[(self.head + i) % cap])
            .collect()
    }

    /// Photograph the armed ring: capacity, drop count, and surviving
    /// events as one [`RingSnapshot`]. Non-destructive (`&self`), so
    /// the recorder keeps recording afterwards — this is the `/trace`
    /// endpoint's read path.
    pub fn snapshot(&self) -> RingSnapshot {
        RingSnapshot {
            capacity: self.capacity(),
            dropped: self.dropped(),
            events: self.events(),
        }
    }

    #[inline]
    fn push(&mut self, kind: EventKind, name: &'static str, arg: u64) {
        let cap = self.buf.len();
        if cap == 0 {
            self.dropped += 1;
            return;
        }
        let ev = TraceEvent {
            kind,
            name,
            ts_ns: self.clock.now_ns(),
            arg,
        };
        // Compare-and-wrap instead of `%`: a predicted branch, not an
        // integer division, on the per-event hot path.
        if self.len < cap {
            let mut idx = self.head + self.len;
            if idx >= cap {
                idx -= cap;
            }
            self.buf[idx] = ev;
            self.len += 1;
        } else {
            self.buf[self.head] = ev;
            self.head += 1;
            if self.head == cap {
                self.head = 0;
            }
            self.dropped += 1;
        }
    }
}

impl<C: Clock> SpanSink for FlightRecorder<'_, C> {
    const ENABLED: bool = true;
    const FINE: bool = false;

    #[inline]
    fn begin(&mut self, name: &'static str, arg: u64) {
        self.push(EventKind::Begin, name, arg);
    }

    #[inline]
    fn end(&mut self, name: &'static str) {
        self.push(EventKind::End, name, 0);
    }

    #[inline]
    fn instant(&mut self, name: &'static str, arg: u64) {
        self.push(EventKind::Instant, name, arg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmatch_obs::ManualClock;

    #[test]
    fn trace_recorder_samples_injected_clock() {
        let clock = ManualClock::new();
        let mut rec = TraceRecorder::new(&clock);
        rec.begin("a", 7);
        clock.advance(10);
        rec.instant("i", 1);
        clock.advance(5);
        rec.end("a");
        let evs = rec.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0], TraceEvent {
            kind: EventKind::Begin,
            name: "a",
            ts_ns: 0,
            arg: 7
        });
        assert_eq!(evs[1].ts_ns, 10);
        assert_eq!(evs[2].ts_ns, 15);
        assert_eq!(rec.take().len(), 3);
        assert!(rec.events().is_empty());
    }

    #[test]
    fn fidelity_tiers_are_declared_correctly() {
        // The unbounded recorder is the deep-dive tool (full fidelity);
        // the always-armed ring opts out of per-round spans.
        const {
            assert!(TraceRecorder::<ManualClock>::ENABLED);
            assert!(TraceRecorder::<ManualClock>::FINE);
            assert!(FlightRecorder::<ManualClock>::ENABLED);
            assert!(!FlightRecorder::<ManualClock>::FINE);
        }
    }

    #[test]
    fn flight_recorder_keeps_last_n() {
        let clock = ManualClock::new();
        let mut rec = FlightRecorder::new(&clock, 4);
        assert!(rec.is_empty());
        for i in 0..10u64 {
            clock.set(i);
            rec.instant("tick", i);
        }
        assert_eq!(rec.capacity(), 4);
        assert_eq!(rec.len(), 4);
        assert_eq!(rec.dropped(), 6);
        let evs = rec.events();
        let args: Vec<u64> = evs.iter().map(|e| e.arg).collect();
        assert_eq!(args, vec![6, 7, 8, 9], "last N survive, oldest first");
    }

    #[test]
    fn flight_recorder_capacity_zero_drops_everything() {
        let clock = ManualClock::new();
        let mut rec = FlightRecorder::new(&clock, 0);
        rec.begin("a", 0);
        rec.end("a");
        assert!(rec.is_empty());
        assert_eq!(rec.dropped(), 2);
        assert!(rec.events().is_empty());
    }

    #[test]
    fn snapshot_is_nondestructive_and_labels_drops() {
        let clock = ManualClock::new();
        let mut rec = FlightRecorder::new(&clock, 4);
        rec.begin("a", 0);
        rec.end("a");
        let snap = rec.snapshot();
        assert_eq!(snap.capacity, 4);
        assert_eq!(snap.dropped, 0);
        assert_eq!(snap.events.len(), 2);
        // The ring keeps recording after the photograph.
        rec.instant("i", 1);
        assert_eq!(rec.len(), 3);
        let track = snap.into_track(0, "serve ring");
        assert_eq!(track.label, "serve ring");
        assert_eq!(track.events.len(), 2);

        // Once wrapped, the drop count rides on the track label.
        for i in 0..10u64 {
            rec.instant("tick", i);
        }
        let track = rec.snapshot().into_track(3, "serve ring");
        assert_eq!(track.tid, 3);
        assert_eq!(track.label, "serve ring (dropped 9)");
        assert_eq!(track.events.len(), 4);
    }

    #[test]
    fn flight_recorder_partial_fill_preserves_order() {
        let clock = ManualClock::new();
        let mut rec = FlightRecorder::new(&clock, 8);
        clock.set(1);
        rec.begin("a", 0);
        clock.set(2);
        rec.end("a");
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.dropped(), 0);
        let evs = rec.events();
        assert_eq!(evs[0].kind, EventKind::Begin);
        assert_eq!(evs[1].kind, EventKind::End);
        crate::check_well_formed(&evs, false).unwrap();
    }
}
