//! Exporters: Chrome trace-event JSON (Perfetto / `chrome://tracing`)
//! and the self-describing `kmatch.trace/v1` document, plus the
//! validators the CLI and CI smoke checks use.

use serde::Value;

use crate::sink::{EventKind, TraceEvent};

/// Schema tag of the native JSON export, alongside
/// `kmatch.run_report/v1` in the run-report family.
pub const TRACE_SCHEMA: &str = "kmatch.trace/v1";

/// One thread track of a timeline: the events of a single worker (or of
/// the only thread, for serial runs). Chrome export maps `tid` to a
/// thread track and labels it `label` via a `thread_name` metadata
/// event.
#[derive(Debug, Clone)]
pub struct TraceTrack {
    /// Thread-track id (chunk/worker index; `0` for serial runs).
    pub tid: u64,
    /// Human-readable track label, e.g. `"worker-3"` or `"main"`.
    pub label: String,
    /// The track's events in recording order.
    pub events: Vec<TraceEvent>,
}

impl TraceTrack {
    /// A single-track timeline labelled `main`.
    pub fn main(events: Vec<TraceEvent>) -> Vec<TraceTrack> {
        vec![TraceTrack {
            tid: 0,
            label: "main".to_string(),
            events,
        }]
    }

    /// One track per chunk, labelled `worker-<i>`.
    pub fn workers(chunks: Vec<Vec<TraceEvent>>) -> Vec<TraceTrack> {
        chunks
            .into_iter()
            .enumerate()
            .map(|(i, events)| TraceTrack {
                tid: i as u64,
                label: format!("worker-{i}"),
                events,
            })
            .collect()
    }
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Render tracks as Chrome trace-event JSON (the "JSON Array Format"
/// wrapped in a `traceEvents` object), loadable in Perfetto and
/// `chrome://tracing`. Span begins/ends become `ph: "B"` / `ph: "E"`
/// duration events, instants become thread-scoped `ph: "i"` events, and
/// every track gets a `thread_name` metadata record. Timestamps convert
/// from nanoseconds to the format's microseconds.
pub fn to_chrome_json(tracks: &[TraceTrack]) -> String {
    let mut events: Vec<Value> = Vec::new();
    for track in tracks {
        events.push(obj(vec![
            ("name", Value::String("thread_name".into())),
            ("ph", Value::String("M".into())),
            ("pid", Value::Number(1.0)),
            ("tid", Value::Number(track.tid as f64)),
            (
                "args",
                obj(vec![("name", Value::String(track.label.clone()))]),
            ),
        ]));
        for ev in &track.events {
            let ts_us = ev.ts_ns as f64 / 1000.0;
            let mut fields = vec![
                ("name", Value::String(ev.name.to_string())),
                (
                    "ph",
                    Value::String(
                        match ev.kind {
                            EventKind::Begin => "B",
                            EventKind::End => "E",
                            EventKind::Instant => "i",
                        }
                        .into(),
                    ),
                ),
                ("ts", Value::Number(ts_us)),
                ("pid", Value::Number(1.0)),
                ("tid", Value::Number(track.tid as f64)),
            ];
            if ev.kind == EventKind::Instant {
                fields.push(("s", Value::String("t".into())));
            }
            if ev.kind != EventKind::End {
                fields.push(("args", obj(vec![("arg", Value::Number(ev.arg as f64))])));
            }
            events.push(obj(fields));
        }
    }
    let top = obj(vec![
        ("traceEvents", Value::Array(events)),
        ("displayTimeUnit", Value::String("ns".into())),
    ]);
    let mut s = serde_json::to_string_pretty(&top).expect("trace serialization is infallible");
    s.push('\n');
    s
}

fn kind_str(kind: EventKind) -> &'static str {
    match kind {
        EventKind::Begin => "begin",
        EventKind::End => "end",
        EventKind::Instant => "instant",
    }
}

/// Render tracks as the native `kmatch.trace/v1` JSON document:
/// schema-tagged, nanosecond timestamps preserved exactly as recorded,
/// one object per event.
pub fn to_trace_json(tracks: &[TraceTrack]) -> String {
    let tracks_v: Vec<Value> = tracks
        .iter()
        .map(|track| {
            let events: Vec<Value> = track
                .events
                .iter()
                .map(|ev| {
                    obj(vec![
                        ("kind", Value::String(kind_str(ev.kind).into())),
                        ("name", Value::String(ev.name.to_string())),
                        ("ts_ns", Value::Number(ev.ts_ns as f64)),
                        ("arg", Value::Number(ev.arg as f64)),
                    ])
                })
                .collect();
            obj(vec![
                ("tid", Value::Number(track.tid as f64)),
                ("label", Value::String(track.label.clone())),
                ("events", Value::Array(events)),
            ])
        })
        .collect();
    let top = obj(vec![
        ("schema", Value::String(TRACE_SCHEMA.into())),
        ("tracks", Value::Array(tracks_v)),
    ]);
    let mut s = serde_json::to_string_pretty(&top).expect("trace serialization is infallible");
    s.push('\n');
    s
}

/// Validate that `text` parses as Chrome trace-event JSON: a
/// `traceEvents` array whose entries all carry `name`/`ph`/`pid`/`tid`
/// (and `ts` for non-metadata events). Returns the distinct event names
/// seen, so smoke checks can assert the required phases are present.
pub fn validate_chrome_json(text: &str) -> Result<Vec<String>, String> {
    let v: Value = serde_json::from_str(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let events = match v.get("traceEvents") {
        Some(Value::Array(events)) => events,
        _ => return Err("missing `traceEvents` array".to_string()),
    };
    let mut names: Vec<String> = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let name = match ev.get("name") {
            Some(Value::String(s)) => s.clone(),
            _ => return Err(format!("event {i}: missing `name`")),
        };
        let ph = match ev.get("ph") {
            Some(Value::String(s)) => s.clone(),
            _ => return Err(format!("event {i}: missing `ph`")),
        };
        for key in ["pid", "tid"] {
            match ev.get(key) {
                Some(Value::Number(_)) => {}
                _ => return Err(format!("event {i}: missing numeric `{key}`")),
            }
        }
        if ph != "M" {
            match ev.get("ts") {
                Some(Value::Number(_)) => {}
                _ => return Err(format!("event {i}: missing numeric `ts`")),
            }
            if !names.contains(&name) {
                names.push(name);
            }
        }
    }
    Ok(names)
}

/// Validate a `kmatch.trace/v1` document: schema tag, `tracks` array,
/// per-track `tid`/`label`/`events`, per-event
/// `kind`/`name`/`ts_ns`/`arg`. Returns the distinct event names seen.
pub fn validate_trace_json(text: &str) -> Result<Vec<String>, String> {
    let v: Value = serde_json::from_str(text).map_err(|e| format!("invalid JSON: {e}"))?;
    match v.get("schema") {
        Some(Value::String(s)) if s == TRACE_SCHEMA => {}
        Some(Value::String(s)) => {
            return Err(format!(
                "schema mismatch: got {s:?}, expected {TRACE_SCHEMA:?}"
            ))
        }
        _ => return Err("missing `schema` key".to_string()),
    }
    let tracks = match v.get("tracks") {
        Some(Value::Array(tracks)) => tracks,
        _ => return Err("missing `tracks` array".to_string()),
    };
    let mut names: Vec<String> = Vec::new();
    for (t, track) in tracks.iter().enumerate() {
        if !matches!(track.get("tid"), Some(Value::Number(_))) {
            return Err(format!("track {t}: missing numeric `tid`"));
        }
        if !matches!(track.get("label"), Some(Value::String(_))) {
            return Err(format!("track {t}: missing `label`"));
        }
        let events = match track.get("events") {
            Some(Value::Array(events)) => events,
            _ => return Err(format!("track {t}: missing `events` array")),
        };
        for (i, ev) in events.iter().enumerate() {
            match ev.get("kind") {
                Some(Value::String(k)) if ["begin", "end", "instant"].contains(&k.as_str()) => {}
                _ => return Err(format!("track {t} event {i}: bad `kind`")),
            }
            let name = match ev.get("name") {
                Some(Value::String(s)) => s.clone(),
                _ => return Err(format!("track {t} event {i}: missing `name`")),
            };
            for key in ["ts_ns", "arg"] {
                if !matches!(ev.get(key), Some(Value::Number(_))) {
                    return Err(format!("track {t} event {i}: missing numeric `{key}`"));
                }
            }
            if !names.contains(&name) {
                names.push(name);
            }
        }
    }
    Ok(names)
}

/// Convenience for smoke checks: validate `text` as Chrome trace JSON
/// and return an error naming the first entry of `required` that is
/// absent from the event names.
pub fn chrome_trace_names(text: &str, required: &[&str]) -> Result<Vec<String>, String> {
    let names = validate_chrome_json(text)?;
    for want in required {
        if !names.iter().any(|n| n == want) {
            return Err(format!("required event name {want:?} absent from trace"));
        }
    }
    Ok(names)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::TraceEvent;
    use crate::span;

    fn sample_tracks() -> Vec<TraceTrack> {
        let t0 = vec![
            TraceEvent {
                kind: EventKind::Begin,
                name: span::GS_SOLVE,
                ts_ns: 1000,
                arg: 16,
            },
            TraceEvent {
                kind: EventKind::Instant,
                name: span::CACHE_MISS,
                ts_ns: 1500,
                arg: 0,
            },
            TraceEvent {
                kind: EventKind::End,
                name: span::GS_SOLVE,
                ts_ns: 2000,
                arg: 0,
            },
        ];
        let t1 = vec![TraceEvent {
            kind: EventKind::Instant,
            name: span::CACHE_HIT,
            ts_ns: 1200,
            arg: 0,
        }];
        TraceTrack::workers(vec![t0, t1])
    }

    #[test]
    fn chrome_export_validates_and_reports_names() {
        let text = to_chrome_json(&sample_tracks());
        let names = validate_chrome_json(&text).unwrap();
        assert!(names.contains(&span::GS_SOLVE.to_string()));
        assert!(names.contains(&span::CACHE_MISS.to_string()));
        assert!(names.contains(&span::CACHE_HIT.to_string()));
        chrome_trace_names(&text, &[span::GS_SOLVE, span::CACHE_HIT]).unwrap();
        let err = chrome_trace_names(&text, &[span::IRVING_PHASE1]).unwrap_err();
        assert!(err.contains(span::IRVING_PHASE1), "{err}");
    }

    #[test]
    fn chrome_export_has_thread_tracks_and_microsecond_ts() {
        let text = to_chrome_json(&sample_tracks());
        let v: Value = serde_json::from_str(&text).unwrap();
        let events = match v.get("traceEvents") {
            Some(Value::Array(e)) => e.clone(),
            _ => panic!("missing traceEvents"),
        };
        // Two metadata records labelling the worker tracks.
        let meta: Vec<&Value> = events
            .iter()
            .filter(|e| e.get("ph") == Some(&Value::String("M".into())))
            .collect();
        assert_eq!(meta.len(), 2);
        assert_eq!(
            meta[1].get("args").and_then(|a| a.get("name")),
            Some(&Value::String("worker-1".into()))
        );
        // 1000 ns begin → ts 1.0 µs; instants carry a scope.
        let begin = events
            .iter()
            .find(|e| e.get("ph") == Some(&Value::String("B".into())))
            .unwrap();
        assert_eq!(begin.get("ts"), Some(&Value::Number(1.0)));
        let instant = events
            .iter()
            .find(|e| e.get("ph") == Some(&Value::String("i".into())))
            .unwrap();
        assert_eq!(instant.get("s"), Some(&Value::String("t".into())));
    }

    #[test]
    fn trace_json_roundtrips_schema_and_names() {
        let text = to_trace_json(&sample_tracks());
        assert!(text.contains(TRACE_SCHEMA));
        let names = validate_trace_json(&text).unwrap();
        assert_eq!(names.len(), 3);
        // Nanosecond timestamps survive exactly.
        assert!(text.contains("\"ts_ns\": 1500"));
    }

    #[test]
    fn validators_reject_malformed_documents() {
        assert!(validate_chrome_json("not json").is_err());
        assert!(validate_chrome_json("{}").is_err());
        assert!(validate_trace_json("{}").is_err());
        let wrong = r#"{"schema": "kmatch.trace/v9", "tracks": []}"#;
        assert!(validate_trace_json(wrong).unwrap_err().contains("mismatch"));
        let bad_event = r#"{"traceEvents": [{"ph": "B"}]}"#;
        assert!(validate_chrome_json(bad_event)
            .unwrap_err()
            .contains("name"));
    }
}
