//! Span-based execution timelines for the kmatch solvers.
//!
//! The observability layer (`kmatch-obs`) answers *how much* — counters
//! and histograms over a whole run. This crate answers *where the time
//! went inside one solve*: a [`SpanSink`] receives begin/end/instant
//! events at the real phase boundaries of the engines (GS proposal
//! rounds, Irving phase 1/2, binding edges, batch chunks, cache
//! lookups), and recorders turn those events into timelines that export
//! to Chrome trace-event JSON (loadable in Perfetto or
//! `chrome://tracing`) or a self-describing `kmatch.trace/v1` document.
//!
//! The design mirrors the `Tracer`/`Metrics` pattern used everywhere
//! else in this workspace: the sink is a generic parameter that
//! monomorphizes away. [`NoSpans`] has empty `#[inline(always)]` bodies
//! and a `const ENABLED: bool = false` escape hatch, so the un-traced
//! hot paths compile to exactly the code they were before this crate
//! existed — proven by the counting-allocator suites in `kmatch-gs` and
//! `kmatch-roommates`.
//!
//! Two real sinks are provided:
//!
//! - [`TraceRecorder`] — an unbounded event log for bounded runs you
//!   intend to export in full;
//! - [`FlightRecorder`] — a fixed-capacity ring buffer, preallocated at
//!   construction and overwriting the oldest event when full (zero
//!   steady-state allocation), keeping the *last N* events so a failed
//!   or slow run can be dumped post-hoc like an aircraft flight
//!   recorder.
//!
//! Sinks sample their own injected [`Clock`](kmatch_obs::Clock) — the
//! engines stay clock-free, and a shared
//! [`ManualClock`](kmatch_obs::ManualClock) makes timelines
//! deterministic under test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
mod recorder;
mod sink;

pub use export::{
    chrome_trace_names, to_chrome_json, to_trace_json, validate_chrome_json, validate_trace_json,
    TraceTrack, TRACE_SCHEMA,
};
pub use recorder::{FlightRecorder, RingSnapshot, TraceRecorder};
pub use sink::{check_well_formed, EventKind, NoSpans, SpanSink, TraceEvent};

/// The span/instant name taxonomy. Every instrumentation site in the
/// workspace uses one of these `&'static str` constants, so exporters,
/// CI smoke checks, and tests can match on them without stringly-typed
/// drift.
pub mod span {
    /// Whole bipartite deferred-acceptance solve (arg = `n`).
    pub const GS_SOLVE: &str = "gs.solve";
    /// One GS proposal round (arg = round number, 1-based).
    pub const GS_ROUND: &str = "gs.round";
    /// Instant: warm resolve replayed the delta cascade (arg = number of
    /// re-freed proposers).
    pub const GS_WARM_RESOLVE: &str = "gs.warm.resolve";
    /// Instant: warm resolve fell back to a cold solve (arg = a
    /// [`reason`](crate::reason) code).
    pub const GS_WARM_FALLBACK: &str = "gs.warm.fallback";
    /// Whole stable-roommates solve (arg = `n`).
    pub const IRVING_SOLVE: &str = "irving.solve";
    /// Irving phase 1: proposal/threshold tightening (arg = `n`).
    pub const IRVING_PHASE1: &str = "irving.phase1";
    /// Irving phase 2: rotation elimination (arg = `n`).
    pub const IRVING_PHASE2: &str = "irving.phase2";
    /// Instant: roommates warm resolve replayed the stored execution.
    pub const IRVING_WARM_RESOLVE: &str = "irving.warm.resolve";
    /// Instant: roommates warm resolve fell back to a cold solve (arg =
    /// a [`reason`](crate::reason) code).
    pub const IRVING_WARM_FALLBACK: &str = "irving.warm.fallback";
    /// One spanning-tree binding edge in a k-partite bind (arg = edge
    /// index in tree order).
    pub const BIND_EDGE: &str = "bind.edge";
    /// A binding edge the incremental binder re-solved (arg = edge
    /// index).
    pub const BIND_EDGE_DIRTY: &str = "bind.edge.dirty";
    /// A binding edge the incremental binder reused from cache (arg =
    /// edge index).
    pub const BIND_EDGE_CLEAN: &str = "bind.edge.clean";
    /// One parallel-batch chunk (arg = chunk/worker id).
    pub const BATCH_CHUNK: &str = "batch.chunk";
    /// Instant: content-addressed solve cache hit.
    pub const CACHE_HIT: &str = "cache.hit";
    /// Instant: content-addressed solve cache miss.
    pub const CACHE_MISS: &str = "cache.miss";
    /// Work-stealing executor: a worker running one chunk (arg = chunk
    /// index). These live on per-*worker* tracks, distinct from the
    /// deterministic per-*chunk* `batch.chunk` timelines.
    pub const EXEC_BUSY: &str = "exec.busy";
    /// Work-stealing executor: a successful steal sweep (arg = the chunk
    /// index taken from a victim's deque).
    pub const EXEC_STEAL: &str = "exec.steal";
    /// Work-stealing executor: a worker waiting at the final barrier for
    /// stragglers to finish (arg = worker index).
    pub const EXEC_IDLE: &str = "exec.idle";
}

/// Warm-resolve fallback reason codes, carried as the `arg` of
/// [`span::GS_WARM_FALLBACK`] / [`span::IRVING_WARM_FALLBACK`] instants.
pub mod reason {
    /// No previous execution to warm-start from (first solve).
    pub const COLD_START: u64 = 0;
    /// The instance size changed since the stored execution.
    pub const SIZE_MISMATCH: u64 = 1;
    /// No solve footer was recorded (roommates: prior run predates the
    /// footer, or the workspace was reset).
    pub const NO_FOOTER: u64 = 2;
    /// A delta touched below the live prefix of some preference row
    /// (roommates warm replay would be unsound).
    pub const PREFIX_MISS: u64 = 3;
}
