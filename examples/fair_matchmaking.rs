//! Procedural fairness in two-sided matching (§III-B, Fig. 2).
//!
//! Gale–Shapley structurally favors the proposing side. The paper's remedy
//! runs the stable-roommates algorithm on the SMP (both sides propose) and
//! alternates which side's preference loops are broken in phase 2.
//!
//! This example reproduces the paper's deadlock walkthrough and then
//! quantifies the fairness gap on random markets.
//!
//! ```text
//! cargo run --example fair_matchmaking
//! ```

use kmatch::gs::{gale_shapley, mean_proposer_rank, mean_responder_rank};
use kmatch::prelude::*;
use kmatch::roommates::oriented_stable_marriage;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    println!("== The paper's deadlock instance (Fig. 2) ==\n");
    let inst = kmatch::gen::paper::fig2_deadlock_smp();
    let names_m = ["m", "m'"];
    let names_w = ["w", "w'"];

    let gs = gale_shapley(&inst);
    print!("man-proposing GS      : ");
    print_pairs(&gs.matching, &names_m, &names_w);

    let man_opt = oriented_stable_marriage(&inst, SmpOrientation::SeedFromWomen);
    print!("break women's loop    : ");
    print_pairs(&man_opt.matching, &names_m, &names_w);

    let woman_opt = oriented_stable_marriage(&inst, SmpOrientation::SeedFromMen);
    print!("break men's loop      : ");
    print_pairs(&woman_opt.matching, &names_m, &names_w);

    let fair = fair_stable_marriage(&inst);
    print!("alternating (fair)    : ");
    print_pairs(&fair.matching, &names_m, &names_w);

    println!("\n== Fairness on random markets (n = 64, 20 trials) ==\n");
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let trials = 20;
    let n = 64;
    let mut rows = [
        ("GS (men propose)", 0.0, 0.0),
        ("fair (alternating)", 0.0, 0.0),
        ("GS (women propose)", 0.0, 0.0),
    ];
    for _ in 0..trials {
        let market = kmatch::gen::uniform_bipartite(n, &mut rng);
        let man_gs = gale_shapley(&market).matching;
        rows[0].1 += mean_proposer_rank(&market, &man_gs);
        rows[0].2 += mean_responder_rank(&market, &man_gs);
        let fair = fair_stable_marriage(&market).matching;
        rows[1].1 += mean_proposer_rank(&market, &fair);
        rows[1].2 += mean_responder_rank(&market, &fair);
        let woman_gs = gale_shapley(&market.swapped()).matching.swapped();
        rows[2].1 += mean_proposer_rank(&market, &woman_gs);
        rows[2].2 += mean_responder_rank(&market, &woman_gs);
    }
    println!(
        "{:<20} {:>12} {:>12}",
        "solver", "men's rank", "women's rank"
    );
    for (name, m, w) in rows {
        println!(
            "{name:<20} {:>12.2} {:>12.2}",
            m / trials as f64,
            w / trials as f64
        );
    }
    println!("\n(lower = happier; the fair solver sits between the two GS extremes)");
}

fn print_pairs(m: &BipartiteMatching, names_m: &[&str], names_w: &[&str]) {
    let pairs: Vec<String> = m
        .pairs()
        .map(|(a, b)| format!("({}, {})", names_m[a as usize], names_w[b as usize]))
        .collect();
    println!("{}", pairs.join(" "));
}
