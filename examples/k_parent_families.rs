//! k-parent family formation with gender priorities (§IV-D).
//!
//! When families can be *partially* raided — a sub-family defects if its
//! lead member (highest-priority gender) agrees — ordinary binding trees no
//! longer guarantee stability. Algorithm 2 grows a **bitonic** binding tree
//! that does (Theorem 5).
//!
//! The example contrasts a non-bitonic tree (Fig. 5a) with Algorithm 2's
//! priority trees, and shows the `(k−1)!` priority trees all succeed.
//!
//! ```text
//! cargo run --example k_parent_families
//! ```

use kmatch::core::all_priority_trees;
use kmatch::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let k = 4usize;
    let n = 5usize;
    let priorities = GenderPriorities::by_id(k);
    println!("society: k = {k} genders (priority = gender id), n = {n} members each\n");

    // Fig. 5(a): the path 4-1-2-3 (0-indexed 3-0-1-2) is NOT bitonic.
    let fig5a = BindingTree::new(4, vec![(3, 0), (0, 1), (1, 2)]).unwrap();
    println!(
        "Fig. 5(a) tree {fig5a}: bitonic = {}",
        priorities.is_bitonic_under(&fig5a)
    );

    // Hunt for an instance where the non-bitonic tree's matching admits a
    // weakened blocking family.
    let mut failures = 0;
    let mut first_witness = None;
    for seed in 0..100u64 {
        let inst = kmatch::gen::uniform_kpartite(k, n, &mut ChaCha8Rng::seed_from_u64(seed));
        let m = bind(&inst, &fig5a);
        assert!(
            is_kary_stable(&inst, &m),
            "Theorem 2 still holds (full condition)"
        );
        if let Some(bf) = find_weak_blocking_family(&inst, &m, &priorities) {
            failures += 1;
            first_witness.get_or_insert((seed, bf));
        }
    }
    println!(
        "weakened blocking family found on {failures}/100 random instances \
         (full stability held on all 100)"
    );
    if let Some((seed, bf)) = first_witness {
        println!(
            "  e.g. seed {seed}: members {:?} drawn from families {:?}\n",
            bf.members, bf.source_families
        );
    }

    // Algorithm 2: every priority-based (bitonic) tree is immune.
    let trees = all_priority_trees(&priorities);
    println!(
        "Algorithm 2 trees: {} = (k-1)! candidates, all bitonic; checking all on 25 instances…",
        trees.len()
    );
    let mut checked = 0;
    for seed in 0..25u64 {
        let inst = kmatch::gen::uniform_kpartite(k, n, &mut ChaCha8Rng::seed_from_u64(1000 + seed));
        for tree in &trees {
            let m = bind(&inst, tree);
            assert!(
                is_weakly_stable(&inst, &m, &priorities),
                "Theorem 5 violated by {tree} on seed {seed}"
            );
            checked += 1;
        }
    }
    println!("  {checked} bindings, zero weakened blocking families (Theorem 5) ✓\n");

    // Show one concrete family formation with the chain (descending
    // priority path) tree.
    let inst = kmatch::gen::uniform_kpartite(k, n, &mut ChaCha8Rng::seed_from_u64(5));
    let (matching, _) = priority_bind(&inst, &priorities, AttachChoice::Chain);
    println!("families from the descending-priority chain tree:");
    for f in matching.family_ids() {
        let members: Vec<String> = matching
            .family(f)
            .iter()
            .enumerate()
            .map(|(g, &i)| format!("G{g}[{i}]"))
            .collect();
        println!("  family {f}: ({})", members.join(", "));
    }
    let cost = kmatch::core::family_cost(&inst, &matching);
    println!("mean partner rank: {:.2}", cost.mean_rank);
}
