//! The paper's sociology motivation (§III-A, §IV-A): in a society with
//! more than two genders, stable *pairwise* marriage is no longer
//! guaranteed — but stable *k-parent families* always exist.
//!
//! This example walks both halves:
//! 1. Theorem 1 — the adversarial 3-gender society where every perfect
//!    pairing admits a runaway couple, detected by Irving's algorithm.
//! 2. Theorem 2 — the same society sizes under k-ary matching: Algorithm 1
//!    always produces stable families.
//!
//! ```text
//! cargo run --example multi_gender_society
//! ```

use kmatch::prelude::*;
use kmatch::roommates::kpartite::{solve_global_binary, KPartiteBinaryOutcome};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    println!("== Part 1: pairwise marriage in a 3-gender society ==\n");
    let (k, n) = (3usize, 4usize);
    let rm = kmatch::gen::theorem1_roommates(k, n);
    println!(
        "Theorem-1 society: {k} genders x {n} members; one member is ranked \
         last by everyone\nand the rest form a top-choice cycle."
    );
    match solve_global_binary(&rm, n as u32) {
        KPartiteBinaryOutcome::Stable { .. } => {
            unreachable!("Theorem 1: this instance admits no stable binary matching")
        }
        KPartiteBinaryOutcome::NoStableMatching { culprit, stats } => {
            println!(
                "Irving's algorithm: NO stable pairing exists (certificate: {culprit}'s \
                 reduced list emptied; {} proposals).\n",
                stats.proposals
            );
        }
    }

    println!("== Part 2: k-parent families in the same society sizes ==\n");
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let inst = kmatch::gen::uniform_kpartite(k, n, &mut rng);
    let tree = BindingTree::path(k);
    let matching = bind(&inst, &tree);
    assert!(is_kary_stable(&inst, &matching));
    println!("Algorithm 1 produced {n} stable families of one member per gender:");
    for f in matching.family_ids() {
        let members: Vec<String> = matching
            .family(f)
            .iter()
            .enumerate()
            .map(|(g, &i)| format!("G{g}[{i}]"))
            .collect();
        println!("  family {f}: ({})", members.join(", "));
    }

    println!("\n== Part 3: how rare is stable binary matching as k grows? ==\n");
    println!("{:>3} {:>3} | {:>20}", "k", "n", "theorem-1 instance");
    for (kk, nn) in [(3usize, 2usize), (3, 8), (4, 4), (5, 4), (6, 6)] {
        let verdict = kmatch::core::theorem1_verdict(kk, nn);
        println!(
            "{kk:>3} {nn:>3} | perfect: {:>5}, stable: {:>5}",
            verdict.perfect_exists, verdict.stable_exists
        );
    }
    println!("\n(k = 2 would always be stable — Gale & Shapley, 1962.)");
}
