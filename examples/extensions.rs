//! The paper's §VII future-work directions, implemented as extensions:
//!
//! 1. **Quorum-relaxed blocking** — "explore quorum-based approaches to
//!    relax unstable conditions": a tuple blocks when ≥ q of its members
//!    are satisfied. Algorithm 1 guarantees q = k; smaller q erodes fast.
//! 2. **Partitioned k-ary matching in k′-partite graphs** — "a more
//!    general k-ary matching in k′-partite graphs, where k < k′ and
//!    ck = nk′": block-partition the genders, bind per block.
//! 3. **Hospitals/residents** (related work §V-A) — the many-to-one
//!    deferred-acceptance generalization, included for completeness.
//!
//! ```text
//! cargo run -p kmatch --example extensions --release
//! ```

use kmatch::core::{
    is_partition_stable, is_quorum_stable, partitioned_bind, stability_threshold, GenderPartition,
};
use kmatch::gs::{hospitals_residents, is_hr_stable, HospitalsInstance};
use kmatch::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    println!("== 1. Quorum-relaxed blocking families ==\n");
    let (k, n) = (3usize, 4usize);
    let trials = 40u64;
    let mut stable_at = vec![0usize; k + 1];
    let mut thresholds = Vec::new();
    for seed in 0..trials {
        let inst = kmatch::gen::uniform_kpartite(k, n, &mut ChaCha8Rng::seed_from_u64(7000 + seed));
        let m = bind(&inst, &BindingTree::path(k));
        #[allow(clippy::needless_range_loop)]
        for q in 1..=k {
            if is_quorum_stable(&inst, &m, q) {
                stable_at[q] += 1;
            }
        }
        thresholds.push(stability_threshold(&inst, &m).expect("Theorem 2"));
    }
    println!("Algorithm 1 output on {trials} random k=3, n=4 instances:");
    for q in (1..=k).rev() {
        println!("  stable at quorum q = {q}: {:>2}/{trials}", stable_at[q]);
    }
    let mean_t: f64 = thresholds.iter().sum::<usize>() as f64 / trials as f64;
    println!("  mean stability threshold: {mean_t:.2} (k = {k} is the paper's condition)\n");

    println!("== 2. Partitioned k-ary matching in k'-partite graphs ==\n");
    let (k_total, k_block, n) = (6usize, 3usize, 4usize);
    let inst = kmatch::gen::uniform_kpartite(k_total, n, &mut ChaCha8Rng::seed_from_u64(42));
    let partition = GenderPartition::contiguous(k_total, k_block);
    let out = partitioned_bind(&inst, &partition);
    println!(
        "k' = {k_total} genders, blocks of k = {k_block}: c = {} families (c*k = n*k' = {})",
        out.families.len(),
        n * k_total
    );
    assert!(is_partition_stable(&inst, &partition, &out));
    println!("block-local stability verified; sample families:");
    for f in out.families.iter().take(4) {
        let members: Vec<String> = f.members.iter().map(|m| m.to_string()).collect();
        println!("  block {}: ({})", f.block, members.join(", "));
    }

    println!("\n== 3. Hospitals/residents (many-to-one) ==\n");
    // 9 residents, 3 hospitals with capacities 4/3/2.
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let perm = |nn: usize, rng: &mut ChaCha8Rng| {
        use rand::seq::SliceRandom;
        let mut v: Vec<u32> = (0..nn as u32).collect();
        v.shuffle(rng);
        v
    };
    let residents: Vec<Vec<u32>> = (0..9).map(|_| perm(3, &mut rng)).collect();
    let hospitals: Vec<Vec<u32>> = (0..3).map(|_| perm(9, &mut rng)).collect();
    let hr = HospitalsInstance::new(residents, hospitals, vec![4, 3, 2]).unwrap();
    let (assignment, stats) = hospitals_residents(&hr);
    assert!(is_hr_stable(&hr, &assignment));
    println!("stable in {} proposals:", stats.proposals);
    for h in 0..3u32 {
        println!(
            "  hospital {h} (cap {}): residents {:?}",
            hr.capacity(h),
            assignment.admitted(h)
        );
    }
}
