//! Side-by-side comparison of three-dimensional stable matching models
//! (§I of the paper) plus a tour of the SMP stable-matching lattice that
//! underpins §III-B's fairness discussion.
//!
//! ```text
//! cargo run -p kmatch --example model_comparison --release
//! ```

use kmatch::baselines::{
    solve_combination_exact, solve_cyclic_exact, CombinationInstance, CyclicInstance,
};
use kmatch::gs::rotations::enumerate_stable_lattice;
use kmatch::gs::{gale_shapley, mean_proposer_rank, mean_responder_rank};
use kmatch::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    println!("== Three ways to marry three genders (n = 3, 30 seeds) ==\n");
    let trials = 30u64;
    let n = 3usize;
    let (mut cyc_ok, mut comb_ok) = (0, 0);
    let (mut cyc_work, mut comb_work, mut kary_work) = (0u64, 0u64, 0u64);
    for seed in 0..trials {
        let mut rng = ChaCha8Rng::seed_from_u64(300 + seed);
        let ci = CyclicInstance::random(n, &mut rng);
        let (found, ins) = solve_cyclic_exact(&ci);
        cyc_ok += found.is_some() as u64;
        cyc_work += ins;
        let mi = CombinationInstance::random(n, &mut rng);
        let (found, ins) = solve_combination_exact(&mi);
        comb_ok += found.is_some() as u64;
        comb_work += ins;
        let inst = kmatch::gen::uniform_kpartite(3, n, &mut rng);
        kary_work += bind_with_stats(&inst, &BindingTree::path(3)).total_proposals();
    }
    println!(
        "{:<24} {:>10} {:>18} {:>16}",
        "model", "solvable", "work / instance", "prefs / member"
    );
    println!(
        "{:<24} {:>7}/{} {:>18} {:>16}",
        "cyclic 3DSM [4]",
        cyc_ok,
        trials,
        format!("{:.1} matchings", cyc_work as f64 / trials as f64),
        "n"
    );
    println!(
        "{:<24} {:>7}/{} {:>18} {:>16}",
        "combination 3DSM [4]",
        comb_ok,
        trials,
        format!("{:.1} matchings", comb_work as f64 / trials as f64),
        "n^2"
    );
    println!(
        "{:<24} {:>7}/{} {:>18} {:>16}",
        "this paper (Alg. 1)",
        trials,
        trials,
        format!("{:.1} proposals", kary_work as f64 / trials as f64),
        "2n"
    );
    println!("\n(The baselines are exhaustive searches of an NP-complete decision\n problem; Algorithm 1 is guaranteed and O((k-1)n^2) — the paper's point.)\n");

    println!("== The lattice of all stable matchings (n = 16) ==\n");
    let mut rng = ChaCha8Rng::seed_from_u64(77);
    let inst = kmatch::gen::uniform_bipartite(16, &mut rng);
    let lattice = enumerate_stable_lattice(&inst, 100_000).expect("within limit");
    println!("stable matchings: {}", lattice.matchings.len());
    let report = |name: &str, m: &BipartiteMatching| {
        println!(
            "  {:<22} men: {:>5.2}   women: {:>5.2}",
            name,
            mean_proposer_rank(&inst, m),
            mean_responder_rank(&inst, m)
        );
    };
    report("man-optimal (GS)", &gale_shapley(&inst).matching);
    report("fair (roommates)", &fair_stable_marriage(&inst).matching);
    report("egalitarian", lattice.egalitarian(&inst));
    report("sex-equal", lattice.sex_equal(&inst));
    report(
        "woman-optimal",
        &kmatch::gs::responder_optimal(&inst).matching,
    );
    println!("\n(the roommates-based fair solver approximates the lattice's\n egalitarian/sex-equal centre without enumerating it)");
}
