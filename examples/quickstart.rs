//! Quickstart: build a k-partite instance, run Algorithm 1, verify
//! stability, and inspect the outcome.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use kmatch::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    // A society with k = 4 genders and n = 6 members per gender whose
    // preference orders are uniform random (seeded for reproducibility).
    let (k, n) = (4usize, 6usize);
    let mut rng = ChaCha8Rng::seed_from_u64(2016);
    let inst = kmatch::gen::uniform_kpartite(k, n, &mut rng);
    println!("instance: k = {k} genders, n = {n} members each");

    // Algorithm 1 binds the genders along a spanning tree; a path
    // minimizes the parallel bottleneck (max degree 2).
    let tree = BindingTree::path(k);
    println!("binding tree: {tree}");

    let outcome = bind_with_stats(&inst, &tree);
    println!(
        "bound in {} proposals (Theorem 3 bound: (k-1)n^2 = {})",
        outcome.total_proposals(),
        (k - 1) * n * n
    );

    // Theorem 2: the matching is stable — no blocking family exists.
    assert!(is_kary_stable(&inst, &outcome.matching));
    println!("stability verified: no blocking family\n");

    println!("families (one member per gender):");
    for f in outcome.matching.family_ids() {
        let members: Vec<String> = outcome
            .matching
            .family(f)
            .iter()
            .enumerate()
            .map(|(g, &i)| format!("G{g}[{i}]"))
            .collect();
        println!("  family {f}: ({})", members.join(", "));
    }

    // Happiness: mean rank each member assigns to its family partners.
    let cost = kmatch::core::family_cost(&inst, &outcome.matching);
    println!(
        "\nmean partner rank: {:.2} (0 = first choice, {} = last)",
        cost.mean_rank,
        n - 1
    );
    for (g, mean) in cost.per_gender_mean.iter().enumerate() {
        println!("  gender {g}: {mean:.2}");
    }
}
