//! Parallel binding (§IV-C): binding-tree topology determines the parallel
//! round count, and the even–odd path schedule completes in two rounds
//! regardless of k (Fig. 4, Corollary 2).
//!
//! ```text
//! cargo run --example parallel_binding --release
//! ```

use kmatch::parallel::{crew_cost, erew_cost, replication_rounds};
use kmatch::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let (k, n) = (12usize, 64usize);
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let inst = kmatch::gen::uniform_kpartite(k, n, &mut rng);
    println!("instance: k = {k}, n = {n}\n");

    let topologies: Vec<(&str, BindingTree)> = vec![
        ("path", BindingTree::path(k)),
        ("balanced binary", BindingTree::balanced_binary(k)),
        ("star", BindingTree::star(k, 0)),
        ("random (Prüfer)", random_tree(k, &mut rng)),
    ];

    println!(
        "{:<16} {:>3} {:>8} {:>12} {:>12} {:>9}",
        "tree", "Δ", "rounds", "seq iters", "EREW iters", "speedup"
    );
    for (name, tree) in &topologies {
        // Run the real parallel executor with the Δ-round schedule; verify
        // it matches the sequential algorithm, then model the PRAM cost.
        let schedule = tree_edge_coloring(tree);
        let par = parallel_bind_scheduled(&inst, tree, &schedule);
        let seq = bind_with_stats(&inst, tree);
        assert_eq!(
            par.matching, seq.matching,
            "executor must match Algorithm 1"
        );

        let cost = erew_cost(tree, &par.per_edge, None);
        let seq_total = seq.total_proposals();
        println!(
            "{:<16} {:>3} {:>8} {:>12} {:>12} {:>8.2}x",
            name,
            tree.max_degree(),
            cost.depth(),
            seq_total,
            cost.total_iterations(),
            seq_total as f64 / cost.total_iterations() as f64,
        );
    }

    println!("\n== Corollary 2: the even–odd path schedule ==\n");
    let path = BindingTree::path(k);
    let even_odd = even_odd_path_schedule(&path).expect("path tree");
    let par = parallel_bind_scheduled(&inst, &path, &even_odd);
    let cost = erew_cost(&path, &par.per_edge, Some(&even_odd));
    println!(
        "k = {k}: {} bindings execute in exactly {} rounds ({} processors in the wide round)",
        k - 1,
        cost.depth(),
        cost.processors
    );

    println!("\n== CREW emulation via data replication ==\n");
    let star = BindingTree::star(k, 0);
    let out = bind_with_stats(&inst, &star);
    let crew = crew_cost(&star, &out.per_edge);
    println!(
        "star (Δ = {}): EREW needs {} rounds; CREW needs 1 round after \
         ⌈log₂ Δ⌉ = {} replication rounds",
        star.max_degree(),
        star.max_degree(),
        replication_rounds(star.max_degree()),
    );
    println!(
        "modeled CREW iterations: {} (vs {} sequential)",
        crew.total_iterations(),
        out.total_proposals()
    );
}
