//! Replay the paper's worked examples with rendered traces.
//!
//! Prints the §III-B left/right roommates runs in the paper's own
//! notation, the Example-1 GS dialogue, and a binding tree with its
//! parallel schedule annotations.
//!
//! ```text
//! cargo run -p kmatch --example paper_traces
//! ```

use kmatch::gs::gale_shapley_traced;
use kmatch::prelude::*;
use kmatch::roommates::solve_traced;
use kmatch::viz::{
    render_gs_trace, render_kary_matching, render_roommates_trace, render_tree, NameMap,
};

fn main() {
    println!("== Example 1 (first preference set): the GS dialogue ==\n");
    let inst = kmatch::gen::paper::example1_first();
    let out = gale_shapley_traced(&inst);
    let men = NameMap::new(vec!["m".into(), "m'".into()]);
    let women = NameMap::new(vec!["w".into(), "w'".into()]);
    print!(
        "{}",
        render_gs_trace(out.trace.as_ref().unwrap(), &men, &women)
    );
    println!(
        "\nresult: {}",
        if out.matching.partner_of_proposer(0) == 1 {
            "(m', w), (m, w')"
        } else {
            "?"
        }
    );

    println!("\n== §III-B left lists: Irving's algorithm, paper notation ==\n");
    let left = kmatch::gen::paper::section3b_left();
    let (outcome, events) = solve_traced(&left);
    print!(
        "{}",
        render_roommates_trace(&events, &NameMap::paper_tripartite())
    );
    if let Some(m) = outcome.matching() {
        let names = NameMap::paper_tripartite();
        let pairs: Vec<String> = m
            .pairs()
            .iter()
            .map(|&(a, b)| format!("({}, {})", names.of(a), names.of(b)))
            .collect();
        println!("\nstable matching: {}", pairs.join(" "));
        println!("(paper: (m, u'), (m', w), (w', u))");
    }

    println!("\n== §III-B right lists: the no-stable-matching certificate ==\n");
    let right = kmatch::gen::paper::section3b_right();
    let (_, events) = solve_traced(&right);
    // Show just the tail: the certificate.
    let text = render_roommates_trace(&events, &NameMap::paper_tripartite());
    for line in text
        .lines()
        .rev()
        .take(4)
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
    {
        println!("{line}");
    }

    println!("\n== A binding tree and its parallel schedule ==\n");
    let tree = BindingTree::balanced_binary(7);
    print!("{}", render_tree(&tree));

    println!("\n== Fig. 3 families rendered ==\n");
    let inst = kmatch::gen::paper::fig3_tripartite();
    let matching = bind(&inst, &BindingTree::new(3, vec![(0, 1), (1, 2)]).unwrap());
    print!("{}", render_kary_matching(&inst, &matching));
}
