//! # kmatch — stable matching beyond bipartite graphs
//!
//! A complete Rust implementation of *"Stable Matching Beyond Bipartite
//! Graphs"* (Jie Wu, IPPS 2016): stable **k-ary matching** in balanced
//! complete k-partite graphs via the iterative-binding Gale–Shapley
//! algorithm, plus everything the paper builds on — the classic GS
//! algorithm, Irving's stable-roommates algorithm with incomplete lists,
//! binding-tree machinery (Prüfer codes, bitonic trees, parallel
//! schedules), and a rayon-based parallel executor with the paper's PRAM
//! cost model.
//!
//! ## Quick start
//!
//! ```
//! use kmatch::prelude::*;
//! use rand::SeedableRng;
//!
//! // A 4-gender society with 8 members per gender, random preferences.
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
//! let inst = kmatch::gen::uniform_kpartite(4, 8, &mut rng);
//!
//! // Algorithm 1: bind along a path-shaped spanning tree of the genders.
//! let tree = BindingTree::path(4);
//! let outcome = bind_with_stats(&inst, &tree);
//!
//! // Theorem 2: the result is a perfect, stable k-ary matching.
//! assert!(is_kary_stable(&inst, &outcome.matching));
//! // Theorem 3: at most (k−1)·n² proposals.
//! assert!(outcome.total_proposals() <= 3 * 8 * 8);
//! ```
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`prefs`] | instances, rank tables, generators, paper fixtures |
//! | [`graph`] | binding trees, Prüfer codes, bitonic trees, schedules |
//! | [`gs`] | instrumented Gale–Shapley engines, bipartite stability |
//! | [`roommates`] | Irving's algorithm, fair SMP, k-partite binary adapter |
//! | [`core`] | k-ary matching, Algorithms 1–2, blocking-family verifiers |
//! | [`parallel`] | rayon executor, PRAM cost model |
//! | [`distsim`] | synchronous message-passing runtime, distributed GS/binding |
//! | [`baselines`] | cyclic & combination 3DSM baselines (§I, reference 4) |
//!
//! See `DESIGN.md` for the paper-to-module inventory and `EXPERIMENTS.md`
//! for every reproduced claim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use kmatch_baselines as baselines;
pub use kmatch_core as core;
pub use kmatch_distsim as distsim;
pub use kmatch_graph as graph;
pub use kmatch_gs as gs;
pub use kmatch_parallel as parallel;
pub use kmatch_prefs as prefs;
pub use kmatch_roommates as roommates;
pub use kmatch_viz as viz;

/// Re-export of the instance generators (most examples start here).
pub mod gen {
    pub use kmatch_prefs::gen::adversarial::theorem1_roommates;
    pub use kmatch_prefs::gen::correlated::{correlated_bipartite, correlated_kpartite};
    pub use kmatch_prefs::gen::euclidean::{euclidean_bipartite, euclidean_kpartite};
    pub use kmatch_prefs::gen::mallows::{mallows_bipartite, mallows_kpartite};
    pub use kmatch_prefs::gen::paper;
    pub use kmatch_prefs::gen::structured::{
        cyclic_bipartite, identical_bipartite, master_list_kpartite,
    };
    pub use kmatch_prefs::gen::uniform::{uniform_bipartite, uniform_kpartite, uniform_roommates};
}

/// One-stop imports for applications.
pub mod prelude {
    pub use kmatch_core::{
        bind, bind_with_stats, find_blocking_family, find_weak_blocking_family, is_kary_stable,
        is_quorum_stable, is_weakly_stable, optimize_tree, partitioned_bind, priority_bind,
        AttachChoice, BindingOutcome, GenderPartition, GenderPriorities, KAryMatching,
    };
    pub use kmatch_graph::{
        even_odd_path_schedule, random_tree, tree_edge_coloring, BindingTree, Schedule,
    };
    pub use kmatch_gs::{
        egalitarian_stable_matching, enumerate_stable_lattice, gale_shapley, is_stable,
        BipartiteMatching, GsOutcome,
    };
    pub use kmatch_parallel::{parallel_bind, parallel_bind_scheduled};
    pub use kmatch_prefs::{
        BipartiteInstance, GenderId, KPartiteInstance, Member, MergeStrategy, RoommatesInstance,
    };
    pub use kmatch_roommates::{
        fair_stable_marriage, solve as solve_roommates, solve_kpartite_binary, RoommatesOutcome,
        SmpOrientation,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_compiles_and_binds() {
        let inst = crate::gen::paper::fig3_tripartite();
        let tree = BindingTree::path(3);
        let m = bind(&inst, &tree);
        assert!(is_kary_stable(&inst, &m));
    }
}
