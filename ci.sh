#!/usr/bin/env bash
# Workspace CI gate: build, test, lint. Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo bench --no-run"
cargo bench --workspace --no-run

echo "==> metrics smoke"
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
./target/release/kmatch batch --kind gs --n 16 --count 50 --seed 1 \
    --metrics-out "$SMOKE_DIR/report.json"
./target/release/kmatch report validate --input "$SMOKE_DIR/report.json"
for key in '"schema": "kmatch.run_report/v1"' '"solves"' '"proposals"' \
    '"histograms"' '"p99_ns"'; do
  grep -qF "$key" "$SMOKE_DIR/report.json" \
    || { echo "metrics smoke: missing $key in report.json"; exit 1; }
done

echo "==> straggler smoke"
# The work-stealing batch executor's straggler accounting must land in
# the run report and survive validation.
./target/release/kmatch batch --kind gs --n 32 --count 120 --seed 2 \
    --threads 3 --metrics-out "$SMOKE_DIR/straggler.json"
./target/release/kmatch report validate --input "$SMOKE_DIR/straggler.json"
for key in '"straggler"' '"forced_steal"' '"chunk_sizes"' '"busy_ns"' \
    '"steal_ns"' '"idle_ns"' '"chunks_executed"' '"chunks_stolen"'; do
  grep -qF "$key" "$SMOKE_DIR/straggler.json" \
    || { echo "straggler smoke: missing $key in straggler.json"; exit 1; }
done
# Forced-steal stress: every chunk seeds on worker 0's deque, so every
# other worker's work arrives only by stealing — the most adversarial
# schedule the executor can produce. Outcomes must not move: the solver
# totals printed for the plain and forced runs have to be identical.
plain="$(./target/release/kmatch batch --kind gs --n 32 --count 120 --seed 2 \
    --threads 3 2>/dev/null | grep 'total proposals')"
forced="$(./target/release/kmatch batch --kind gs --n 32 --count 120 --seed 2 \
    --threads 3 --force-steal on \
    --metrics-out "$SMOKE_DIR/forced.json" 2>/dev/null | grep 'total proposals')"
[ "$plain" = "$forced" ] \
    || { echo "straggler smoke: forced-steal run diverged: $plain vs $forced"; exit 1; }
./target/release/kmatch report validate --input "$SMOKE_DIR/forced.json"
grep -qF '"forced_steal": true' "$SMOKE_DIR/forced.json" \
    || { echo "straggler smoke: forced.json does not record forced_steal"; exit 1; }

echo "==> oracle smoke"
# A 100k-agent SMP solve through the implicit random-permutation oracle:
# no materialized lists, so this must run in O(n) memory and finish in
# seconds — and its proposal count must sit within 3x of Mertens'
# ~n ln n expectation (a broken oracle degenerates toward n^2).
./target/release/kmatch solve smp --prefs random -n 100000 --seed 1 \
    --metrics-out "$SMOKE_DIR/smp-oracle.json"
./target/release/kmatch report validate --input "$SMOKE_DIR/smp-oracle.json"
python3 - "$SMOKE_DIR/smp-oracle.json" <<'EOF'
import json, math, sys
report = json.load(open(sys.argv[1]))
n = report["n"]
proposals = report["metrics"]["counters"]["proposals"]
limit = 3 * n * math.log(n)
assert n == 100000, f"oracle smoke: unexpected n = {n}"
assert proposals <= limit, \
    f"oracle smoke: {proposals} proposals exceeds 3x n ln n ({limit:.0f})"
assert proposals >= n, \
    f"oracle smoke: {proposals} proposals cannot cover {n} proposers"
print(f"oracle smoke: {proposals} proposals at n = {n} "
      f"({proposals / (n * math.log(n)):.3f}x n ln n)")
EOF

echo "==> incremental smoke"
cat > "$SMOKE_DIR/inst.json" <<'EOF'
{"n": 4,
 "proposers": [[0, 1, 2, 3], [1, 2, 3, 0], [2, 3, 0, 1], [3, 0, 1, 2]],
 "responders": [[1, 0, 3, 2], [2, 1, 0, 3], [3, 2, 1, 0], [0, 3, 2, 1]]}
EOF
cat > "$SMOKE_DIR/deltas.json" <<'EOF'
[{"op": "swap", "side": "proposer", "row": 0, "prefs": [],
  "a": 0, "b": 3, "from": 0, "to": 0},
 {"op": "set_row", "side": "responder", "row": 2, "prefs": [0, 1, 2, 3],
  "a": 0, "b": 0, "from": 0, "to": 0}]
EOF
./target/release/kmatch delta --input "$SMOKE_DIR/inst.json" \
    --deltas "$SMOKE_DIR/deltas.json" --metrics-out "$SMOKE_DIR/delta_report.json"
./target/release/kmatch report validate --input "$SMOKE_DIR/delta_report.json"
for key in '"cache_hits"' '"cache_misses"' '"edges_dirty"' '"warm_solves"'; do
  grep -qF "$key" "$SMOKE_DIR/delta_report.json" \
    || { echo "incremental smoke: missing $key in delta_report.json"; exit 1; }
done
printf '[%s]' "$(cat "$SMOKE_DIR/inst.json")" > "$SMOKE_DIR/batch.json"
./target/release/kmatch batch --input "$SMOKE_DIR/batch.json" \
    --input "$SMOKE_DIR/batch.json" --cache on \
  | grep -qF '1 hits / 1 misses' \
    || { echo "incremental smoke: cached batch hit rate wrong"; exit 1; }

echo "==> trace smoke"
# A single-solve trace keeps full fidelity: the chrome export must be
# JSON that Perfetto would load and must carry the round-level spans.
./target/release/kmatch solve smp --n 64 --seed 5 \
    --trace-out "$SMOKE_DIR/solve.trace.json" --trace-format chrome
python3 -c 'import json,sys; json.load(open(sys.argv[1]))' \
    "$SMOKE_DIR/solve.trace.json" \
    || { echo "trace smoke: solve trace is not valid JSON"; exit 1; }
for name in '"gs.solve"' '"gs.round"'; do
  grep -qF "$name" "$SMOKE_DIR/solve.trace.json" \
    || { echo "trace smoke: missing $name in solve trace"; exit 1; }
done
# Batch timelines go through per-chunk flight recorders (phase-level,
# worker track per chunk); a tiny ring must wrap without corrupting the
# export.
./target/release/kmatch batch --kind roommates --n 24 --count 40 --seed 6 \
    --trace-out "$SMOKE_DIR/batch.trace.json" --flight-recorder 128
python3 -c 'import json,sys; json.load(open(sys.argv[1]))' \
    "$SMOKE_DIR/batch.trace.json" \
    || { echo "trace smoke: batch trace is not valid JSON"; exit 1; }
for name in '"batch.chunk"' '"irving.phase1"' '"irving.phase2"' '"worker-0"'; do
  grep -qF "$name" "$SMOKE_DIR/batch.trace.json" \
    || { echo "trace smoke: missing $name in batch trace"; exit 1; }
done
# Binding traces carry one span per tree edge.
./target/release/kmatch gen kpartite --k 3 --n 12 --seed 7 \
    --out "$SMOKE_DIR/k3.json"
./target/release/kmatch bind --input "$SMOKE_DIR/k3.json" --tree path \
    --trace-out "$SMOKE_DIR/bind.trace.json"
grep -qF '"bind.edge"' "$SMOKE_DIR/bind.trace.json" \
    || { echo "trace smoke: missing bind.edge in bind trace"; exit 1; }

echo "==> serve smoke"
# Live telemetry plane: a background `kmatch serve` must expose
# spec-shaped Prometheus text (batch counters, straggler accounting,
# both conformance gauge families), a validating /report and /trace,
# deterministic ledger rows, and shut down cleanly on /shutdown.
./target/release/kmatch serve --addr 127.0.0.1:0 \
    --port-file "$SMOKE_DIR/serve.port" --n 24 --count 32 --seed 8 \
    --iters 3 --flight-recorder 256 --ledger-out "$SMOKE_DIR/serve.jsonl" \
    --linger-ms 60000 &
SERVE_PID=$!
for _ in $(seq 1 200); do
  [ -s "$SMOKE_DIR/serve.port" ] && break
  sleep 0.05
done
[ -s "$SMOKE_DIR/serve.port" ] \
    || { echo "serve smoke: port file never appeared"; exit 1; }
ADDR="$(tr -d '[:space:]' < "$SMOKE_DIR/serve.port")"
./target/release/kmatch fetch --addr "$ADDR" --path /healthz \
    | grep -qx 'ok' || { echo "serve smoke: /healthz failed"; exit 1; }
# The workload publishes /report after its first iteration; poll for it.
for _ in $(seq 1 200); do
  ./target/release/kmatch fetch --addr "$ADDR" --path /report \
      > "$SMOKE_DIR/serve.report.json" 2>/dev/null && break
  sleep 0.05
done
./target/release/kmatch report validate --input "$SMOKE_DIR/serve.report.json"
./target/release/kmatch fetch --addr "$ADDR" --path /metrics \
    > "$SMOKE_DIR/serve.metrics.prom"
for family in 'kmatch_proposals_total' 'kmatch_solves_total' \
    'kmatch_exec_busy_ns_total' 'kmatch_exec_chunks_total' \
    'kmatch_live_shards_absorbed' 'kmatch_theorem3_ratio' \
    'kmatch_proposals_vs_nlogn'; do
  grep -q "^$family " "$SMOKE_DIR/serve.metrics.prom" \
    || { echo "serve smoke: missing $family sample on /metrics"; exit 1; }
done
grep -Eq '^kmatch_theorem3_ratio [0-9]' "$SMOKE_DIR/serve.metrics.prom" \
    || { echo "serve smoke: theorem3 gauge never observed"; exit 1; }
grep -Eq '^kmatch_proposals_vs_nlogn [0-9]' "$SMOKE_DIR/serve.metrics.prom" \
    || { echo "serve smoke: nlogn gauge never observed"; exit 1; }
./target/release/kmatch fetch --addr "$ADDR" --path /trace \
    > "$SMOKE_DIR/serve.trace.json"
./target/release/kmatch trace validate --input "$SMOKE_DIR/serve.trace.json"
./target/release/kmatch fetch --addr "$ADDR" --path /shutdown > /dev/null
wait "$SERVE_PID" \
    || { echo "serve smoke: serve did not exit cleanly"; exit 1; }
# Every iteration solved the same seeded batch: the appended rows must
# validate and show zero counter drift under ledger diff.
./target/release/kmatch ledger validate --input "$SMOKE_DIR/serve.jsonl"
./target/release/kmatch ledger stats --input "$SMOKE_DIR/serve.jsonl"
./target/release/kmatch ledger diff --input "$SMOKE_DIR/serve.jsonl" \
    | grep -qF 'zero counter drift' \
    || { echo "serve smoke: ledger rows drifted"; exit 1; }

echo "==> bench regression gate"
# Committed baselines must pass against themselves: the gate's exact
# rules (counters, row shapes) hold trivially, and its tolerance rules
# prove the committed files are internally consistent. Injected
# regressions are exercised by crates/bench/tests/bench_diff_cli.rs.
./target/release/bench_diff --baseline results --fresh results --check

echo "CI OK"
