#!/usr/bin/env bash
# Workspace CI gate: build, test, lint. Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo bench --no-run"
cargo bench --workspace --no-run

echo "CI OK"
