#!/usr/bin/env bash
# Workspace CI gate: build, test, lint. Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo bench --no-run"
cargo bench --workspace --no-run

echo "==> metrics smoke"
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
./target/release/kmatch batch --kind gs --n 16 --count 50 --seed 1 \
    --metrics-out "$SMOKE_DIR/report.json"
./target/release/kmatch report validate --input "$SMOKE_DIR/report.json"
for key in '"schema": "kmatch.run_report/v1"' '"solves"' '"proposals"' \
    '"histograms"' '"p99_ns"'; do
  grep -qF "$key" "$SMOKE_DIR/report.json" \
    || { echo "metrics smoke: missing $key in report.json"; exit 1; }
done

echo "CI OK"
