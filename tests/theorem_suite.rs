//! Theorem-by-theorem integration suite: each of the paper's formal claims
//! exercised across crates at sizes beyond the unit tests.

use kmatch::core::theorems::theorem1_verdict;
use kmatch::parallel::{crew_cost, erew_cost, replication_rounds};
use kmatch::prelude::*;
use kmatch::roommates::kpartite::solve_global_binary;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

#[test]
fn theorem1_grid() {
    // Perfect matching exists, stable binary matching does not, for all
    // k > 2 — exhaustive where feasible, Irving beyond.
    for (k, n) in [(3usize, 2usize), (4, 2), (5, 2), (3, 10), (4, 10), (7, 4)] {
        if (k * n) % 2 != 0 {
            continue;
        }
        let v = theorem1_verdict(k, n);
        assert!(v.perfect_exists, "k={k} n={n}");
        assert!(!v.stable_exists, "k={k} n={n}");
    }
}

#[test]
fn theorem2_stability_across_trees_and_sizes() {
    let mut r = rng(71);
    for (k, n) in [(3usize, 12usize), (5, 8), (7, 5), (10, 4)] {
        let inst = kmatch::gen::uniform_kpartite(k, n, &mut r);
        for _ in 0..5 {
            let tree = random_tree(k, &mut r);
            let m = bind(&inst, &tree);
            assert!(is_kary_stable(&inst, &m), "k={k} n={n} tree={tree}");
        }
    }
}

#[test]
fn theorem3_bound_is_respected_and_approached() {
    // Uniform instances sit well under (k-1)n²; fully-aligned master
    // lists drive each binding to ~n²/2.
    let mut r = rng(72);
    let (k, n) = (6usize, 40usize);
    let bound = ((k - 1) * n * n) as u64;
    let tree = BindingTree::path(k);

    let uniform = kmatch::gen::uniform_kpartite(k, n, &mut r);
    let u = bind_with_stats(&uniform, &tree).total_proposals();
    assert!(u <= bound);

    let master = kmatch::gen::master_list_kpartite(k, n, false);
    let m = bind_with_stats(&master, &tree).total_proposals();
    assert!(m <= bound);
    assert_eq!(
        m,
        ((k - 1) * n * (n + 1) / 2) as u64,
        "identical lists force serial dictatorship per binding"
    );
    assert!(m > u, "master lists are the adversarial workload");
}

#[test]
fn theorem4_tightness_both_directions() {
    use kmatch::core::theorems::{binding_class_sizes, underbinding_unstable_instance};
    // Over-binding: the §IV-B cycle with all three edges collapses.
    let inst = kmatch::gen::paper::theorem4_cycle_tripartite();
    assert_eq!(
        binding_class_sizes(&inst, &[(0, 1), (1, 2), (0, 2)]),
        vec![6]
    );
    // Under-binding: every completion of a 1-binding tripartite partial
    // matching is blockable.
    for completion in [vec![0u32, 1], vec![1, 0], vec![1, 2, 0], vec![3, 1, 0, 2]] {
        let (inst, matching) = underbinding_unstable_instance(&completion);
        assert!(
            !is_kary_stable(&inst, &matching),
            "completion {completion:?}"
        );
    }
}

#[test]
fn theorem5_bitonic_binding_weakly_stable_at_size() {
    let mut r = rng(73);
    let pr = GenderPriorities::by_id(5);
    for _ in 0..5 {
        let inst = kmatch::gen::uniform_kpartite(5, 4, &mut r);
        let (m, _) = priority_bind(&inst, &pr, AttachChoice::Chain);
        assert!(is_weakly_stable(&inst, &m, &pr));
        let (m, _) = priority_bind(&inst, &pr, AttachChoice::HighestPriority);
        assert!(is_weakly_stable(&inst, &m, &pr));
    }
}

#[test]
fn corollary1_erew_bound() {
    let mut r = rng(74);
    let (k, n) = (9usize, 20usize);
    let inst = kmatch::gen::uniform_kpartite(k, n, &mut r);
    for tree in [
        BindingTree::path(k),
        BindingTree::star(k, 4),
        BindingTree::balanced_binary(k),
    ] {
        let out = bind_with_stats(&inst, &tree);
        let cost = erew_cost(&tree, &out.per_edge, None);
        assert_eq!(cost.depth(), tree.max_degree(), "rounds = Δ");
        assert!(
            cost.total_iterations() <= (tree.max_degree() * n * n) as u64,
            "≤ Δn²"
        );
    }
}

#[test]
fn corollary2_even_odd_two_rounds_and_identical_output() {
    let mut r = rng(75);
    for k in [3usize, 5, 12, 33] {
        let inst = kmatch::gen::uniform_kpartite(k, 6, &mut r);
        let tree = BindingTree::path(k);
        let schedule = even_odd_path_schedule(&tree).unwrap();
        assert_eq!(schedule.depth(), 2);
        let par = parallel_bind_scheduled(&inst, &tree, &schedule);
        assert_eq!(par.matching, bind(&inst, &tree));
    }
}

#[test]
fn crew_emulation_replication_rounds() {
    let mut r = rng(76);
    let inst = kmatch::gen::uniform_kpartite(9, 6, &mut r);
    let tree = BindingTree::star(9, 0);
    let out = bind_with_stats(&inst, &tree);
    let cost = crew_cost(&tree, &out.per_edge);
    assert_eq!(cost.depth(), 1, "CREW: one GS round");
    assert_eq!(cost.replication_rounds, replication_rounds(8));
    assert_eq!(cost.replication_rounds, 3);
}

#[test]
fn cayley_and_factorial_counts() {
    use kmatch::graph::bitonic::bitonic_tree_count;
    use kmatch::graph::{all_trees, tree_count};
    for k in 2..=6usize {
        assert_eq!(all_trees(k, 2000).len() as u128, tree_count(k).unwrap());
        let pr = GenderPriorities::by_id(k);
        assert_eq!(
            kmatch::core::all_priority_trees(&pr).len() as u128,
            bitonic_tree_count(k).unwrap()
        );
    }
}

#[test]
fn self_matching_extension_also_unstable() {
    // §III-A end: allowing self-matching within a set does not rescue
    // stability. Model U-internal pairs as acceptable in the roommates
    // encoding and check the paper's example shape: one participant
    // despised by everyone still wrecks every matching.
    // (k=3, n=2 with full cross-gender + U-internal acceptability.)
    let lists: Vec<Vec<u32>> = vec![
        // m: w w' u u'    (participants: m=0 m'=1 w=2 w'=3 u=4 u'=5)
        vec![2, 3, 4, 5],
        vec![2, 3, 4, 5],
        vec![0, 1, 4, 5],
        vec![1, 0, 4, 5],
        // u, u' may also pair with each other (self-matching in U).
        vec![0, 1, 2, 3, 5],
        vec![0, 2, 3, 1, 4],
    ];
    let inst = RoommatesInstance::from_lists(lists).unwrap();
    // Exhaustive check and Irving must agree.
    let brute = !kmatch::roommates::brute::all_stable_roommates_matchings(&inst).is_empty();
    let solved = solve_global_binary(&inst, 2).is_stable();
    assert_eq!(brute, solved);
}
