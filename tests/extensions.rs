//! Integration tests for the §VII future-work extensions and the
//! hospitals/residents generalization.

use kmatch::core::{
    is_partition_stable, is_quorum_stable, partitioned_bind, stability_threshold, GenderPartition,
};
use kmatch::gs::{hospitals_residents, is_hr_stable, HospitalsInstance};
use kmatch::prelude::*;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn quorum_chain_full_condition_endpoint() {
    // q = k coincides with §II-C stability; Algorithm 1 satisfies it.
    for seed in 0..10u64 {
        let inst = kmatch::gen::uniform_kpartite(3, 3, &mut ChaCha8Rng::seed_from_u64(seed));
        let m = bind(&inst, &BindingTree::path(3));
        assert!(is_quorum_stable(&inst, &m, 3));
        assert_eq!(is_quorum_stable(&inst, &m, 3), is_kary_stable(&inst, &m));
        let t = stability_threshold(&inst, &m).unwrap();
        assert!((1..=3).contains(&t));
    }
}

#[test]
fn partitioned_families_satisfy_counting_constraint() {
    // §VII: c·k = n·k′.
    for (k_total, k, n) in [(4usize, 2usize, 6usize), (6, 2, 5), (6, 3, 5), (8, 4, 3)] {
        let inst = kmatch::gen::uniform_kpartite(
            k_total,
            n,
            &mut ChaCha8Rng::seed_from_u64((k_total * 31 + k) as u64),
        );
        let partition = GenderPartition::contiguous(k_total, k);
        let out = partitioned_bind(&inst, &partition);
        assert_eq!(out.families.len() * k, n * k_total);
        assert!(is_partition_stable(&inst, &partition, &out));
    }
}

#[test]
fn hr_scales_and_stays_stable() {
    use rand::seq::SliceRandom;
    use rand::Rng;
    let mut rng = ChaCha8Rng::seed_from_u64(1001);
    for (nr, nh) in [(30usize, 5usize), (100, 10), (200, 8)] {
        let mut caps = vec![1u32; nh];
        let mut total = nh;
        while total < nr {
            caps[rng.gen_range(0..nh)] += 1;
            total += 1;
        }
        let perm = |nn: usize, rng: &mut ChaCha8Rng| {
            let mut v: Vec<u32> = (0..nn as u32).collect();
            v.shuffle(rng);
            v
        };
        let residents: Vec<Vec<u32>> = (0..nr).map(|_| perm(nh, &mut rng)).collect();
        let hospitals: Vec<Vec<u32>> = (0..nh).map(|_| perm(nr, &mut rng)).collect();
        let inst = HospitalsInstance::new(residents, hospitals, caps).unwrap();
        let (a, stats) = hospitals_residents(&inst);
        assert!(is_hr_stable(&inst, &a), "nr={nr}, nh={nh}");
        assert!(stats.proposals <= (nr * nh) as u64);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Quorum stability is monotone in q, and q = k always holds for
    /// Algorithm 1 (Theorem 2 endpoint).
    #[test]
    fn quorum_monotonicity(seed in 0u64..1_000_000, k in 2usize..4, n in 2usize..4) {
        let inst = kmatch::gen::uniform_kpartite(k, n, &mut ChaCha8Rng::seed_from_u64(seed));
        let m = bind(&inst, &BindingTree::path(k));
        let stable: Vec<bool> = (1..=k).map(|q| is_quorum_stable(&inst, &m, q)).collect();
        for w in stable.windows(2) {
            prop_assert!(!w[0] || w[1], "monotone in q");
        }
        prop_assert!(stable[k - 1], "q = k is Theorem 2");
    }

    /// Partitioned binding always yields a member-exact partition with
    /// block-stable families.
    #[test]
    fn partitioned_always_block_stable(seed in 0u64..1_000_000, blocks in 2usize..4, k in 2usize..4, n in 1usize..5) {
        let k_total = blocks * k;
        let inst = kmatch::gen::uniform_kpartite(k_total, n, &mut ChaCha8Rng::seed_from_u64(seed));
        let partition = GenderPartition::contiguous(k_total, k);
        let out = partitioned_bind(&inst, &partition);
        prop_assert_eq!(out.families.len(), n * blocks);
        prop_assert!(is_partition_stable(&inst, &partition, &out));
        let mut seen = std::collections::HashSet::new();
        for f in &out.families {
            for &m in &f.members {
                prop_assert!(seen.insert(m));
            }
        }
        prop_assert_eq!(seen.len(), k_total * n);
    }
}
