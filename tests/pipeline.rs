//! Full-pipeline integration: generate → serialize → reload → solve →
//! verify → measure, the way a downstream user drives the library.

use kmatch::core::family_cost;
use kmatch::prefs::serde_support::{BipartiteDto, KPartiteDto, RoommatesDto};
use kmatch::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn kpartite_json_pipeline() {
    let mut rng = ChaCha8Rng::seed_from_u64(81);
    let inst = kmatch::gen::uniform_kpartite(4, 6, &mut rng);

    // Serialize → deserialize → identical instance.
    let json = serde_json::to_string(&KPartiteDto::from(&inst)).unwrap();
    let reloaded =
        KPartiteInstance::try_from(serde_json::from_str::<KPartiteDto>(&json).unwrap()).unwrap();
    assert_eq!(reloaded, inst);

    // Solve on the reloaded instance; verify; measure.
    let tree = BindingTree::path(4);
    let out = bind_with_stats(&reloaded, &tree);
    assert!(is_kary_stable(&reloaded, &out.matching));
    let cost = family_cost(&reloaded, &out.matching);
    assert!(cost.mean_rank >= 0.0);
    assert!(cost.max_rank < 6);
}

#[test]
fn roommates_json_pipeline() {
    let inst = kmatch::gen::theorem1_roommates(4, 3);
    let json = serde_json::to_string(&RoommatesDto::from(&inst)).unwrap();
    let reloaded =
        RoommatesInstance::try_from(serde_json::from_str::<RoommatesDto>(&json).unwrap()).unwrap();
    assert_eq!(reloaded, inst);
    assert!(!solve_roommates(&reloaded).is_stable());
}

#[test]
fn bipartite_json_pipeline() {
    let mut rng = ChaCha8Rng::seed_from_u64(82);
    let inst = kmatch::gen::uniform_bipartite(12, &mut rng);
    let json = serde_json::to_string(&BipartiteDto::from(&inst)).unwrap();
    let reloaded =
        BipartiteInstance::try_from(serde_json::from_str::<BipartiteDto>(&json).unwrap()).unwrap();
    assert_eq!(reloaded, inst);
    let fair = fair_stable_marriage(&reloaded);
    assert!(kmatch::gs::is_stable(&reloaded, &fair.matching));
}

#[test]
fn solve_binary_then_escalate_to_kary() {
    // The paper's decision flow for a multi-gender society: try binary
    // matching first; when the roommates solver says no, fall back to
    // k-ary families, which always work.
    let mut rng = ChaCha8Rng::seed_from_u64(83);
    let inst = kmatch::gen::uniform_kpartite(3, 4, &mut rng);

    let binary = solve_kpartite_binary(&inst, MergeStrategy::RoundRobinByRank);
    // Either way the k-ary fallback must succeed.
    let matching = bind(&inst, &BindingTree::path(3));
    assert!(is_kary_stable(&inst, &matching));
    // And when binary succeeded, its pairs must be cross-gender.
    if let kmatch::roommates::kpartite::KPartiteBinaryOutcome::Stable { pairs, .. } = binary {
        for (a, b) in pairs {
            assert_ne!(a.gender, b.gender);
        }
    }
}

#[test]
fn correlated_markets_stress_binding() {
    // Highly-correlated preferences (everyone agrees who is desirable)
    // push GS toward its quadratic regime; the pipeline must stay correct.
    let mut rng = ChaCha8Rng::seed_from_u64(84);
    for alpha in [0.0, 4.0, 32.0] {
        let inst = kmatch::gen::correlated_kpartite(4, 12, alpha, &mut rng);
        let out = bind_with_stats(&inst, &BindingTree::path(4));
        assert!(is_kary_stable(&inst, &out.matching), "alpha = {alpha}");
        assert!(out.total_proposals() <= 3 * 12 * 12);
    }
}

#[test]
fn merge_strategies_both_sound() {
    let mut rng = ChaCha8Rng::seed_from_u64(85);
    let inst = kmatch::gen::uniform_kpartite(3, 3, &mut rng);
    for strategy in [
        MergeStrategy::RoundRobinByRank,
        MergeStrategy::ConcatByGender,
    ] {
        let rm = RoommatesInstance::from_kpartite(&inst, strategy);
        let brute = kmatch::roommates::brute::stable_matching_exists_brute(&rm);
        assert_eq!(solve_roommates(&rm).is_stable(), brute, "{strategy:?}");
    }
}

#[test]
fn large_scale_smoke() {
    // A size a downstream user might actually run: k = 10, n = 200.
    let mut rng = ChaCha8Rng::seed_from_u64(86);
    let (k, n) = (10usize, 200usize);
    let inst = kmatch::gen::uniform_kpartite(k, n, &mut rng);
    let tree = BindingTree::path(k);
    let out = bind_with_stats(&inst, &tree);
    assert_eq!(out.matching.n(), n);
    assert!(out.total_proposals() <= ((k - 1) * n * n) as u64);
    // Parallel executor agrees at scale.
    let par = parallel_bind(&inst, &tree);
    assert_eq!(par.matching, out.matching);
}
