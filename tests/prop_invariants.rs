//! Property-based invariants across the whole stack (proptest).
//!
//! Strategies generate instances from seeds so shrinking works on the
//! (seed, size) tuple; every invariant here is one of the paper's claims
//! or a structural property the algorithms rely on.

use kmatch::gs::{gale_shapley, is_stable, mcvitie_wilson};
use kmatch::prelude::*;
use kmatch::roommates::brute::stable_matching_exists_brute;
use kmatch::roommates::matching::is_roommates_stable;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// GS: perfect, stable, and within the n² proposal bound; the
    /// McVitie–Wilson variant agrees exactly (confluence).
    #[test]
    fn gs_invariants(seed in 0u64..1_000_000, n in 1usize..40) {
        let inst = kmatch::gen::uniform_bipartite(n, &mut rng(seed));
        let out = gale_shapley(&inst);
        prop_assert!(is_stable(&inst, &out.matching));
        prop_assert!(out.stats.proposals <= (n * n) as u64);
        prop_assert!(out.stats.proposals >= n as u64);
        let mv = mcvitie_wilson(&inst);
        prop_assert_eq!(&mv.matching, &out.matching);
    }

    /// Algorithm 1 on a random tree: the classes form a perfect k-ary
    /// matching and no blocking family exists (Theorems 2, 3).
    #[test]
    fn binding_invariants(seed in 0u64..1_000_000, k in 2usize..6, n in 1usize..8) {
        let mut r = rng(seed);
        let inst = kmatch::gen::uniform_kpartite(k, n, &mut r);
        let tree = random_tree(k, &mut r);
        let out = bind_with_stats(&inst, &tree);
        prop_assert!(is_kary_stable(&inst, &out.matching));
        prop_assert!(out.total_proposals() <= ((k - 1) * n * n) as u64);
        // Perfect partition: every member in exactly one family.
        for g in 0..k {
            for i in 0..n as u32 {
                let f = out.matching.family_of(Member::new(g, i));
                prop_assert_eq!(out.matching.family(f)[g], i);
            }
        }
    }

    /// The rayon executor is bit-identical to sequential Algorithm 1.
    #[test]
    fn parallel_equals_sequential(seed in 0u64..1_000_000, k in 2usize..7, n in 1usize..8) {
        let mut r = rng(seed);
        let inst = kmatch::gen::uniform_kpartite(k, n, &mut r);
        let tree = random_tree(k, &mut r);
        let seq = bind(&inst, &tree);
        prop_assert_eq!(parallel_bind(&inst, &tree).matching, seq.clone());
        let schedule = tree_edge_coloring(&tree);
        prop_assert_eq!(parallel_bind_scheduled(&inst, &tree, &schedule).matching, seq);
    }

    /// Prüfer: decode(encode(t)) == t and the degree sequence matches the
    /// code multiplicities + 1.
    #[test]
    fn prufer_roundtrip(seed in 0u64..1_000_000, k in 2usize..30) {
        let tree = random_tree(k, &mut rng(seed));
        let code = kmatch::graph::encode_prufer(&tree);
        let back = kmatch::graph::decode_prufer(&code, k);
        prop_assert_eq!(back.canonical_edges(), tree.canonical_edges());
        let degrees = tree.degrees();
        #[allow(clippy::needless_range_loop)]
        for v in 0..k {
            let occ = code.iter().filter(|&&x| x as usize == v).count();
            prop_assert_eq!(degrees[v], occ + 1);
        }
    }

    /// Irving's solver agrees with exhaustive search on existence, and
    /// its matchings are stable.
    #[test]
    fn roommates_agrees_with_brute(seed in 0u64..1_000_000, half in 1usize..4) {
        let n = half * 2;
        let inst = kmatch::gen::uniform_roommates(n, &mut rng(seed));
        let brute = stable_matching_exists_brute(&inst);
        match solve_roommates(&inst) {
            RoommatesOutcome::Stable { matching, .. } => {
                prop_assert!(brute);
                prop_assert!(is_roommates_stable(&inst, &matching));
            }
            RoommatesOutcome::NoStableMatching { .. } => prop_assert!(!brute),
        }
    }

    /// Weak stability (§IV-D) implies full stability (§II-C): the weakened
    /// condition admits strictly more blocking families.
    #[test]
    fn weak_implies_full(seed in 0u64..1_000_000, k in 3usize..5, n in 2usize..5) {
        let mut r = rng(seed);
        let inst = kmatch::gen::uniform_kpartite(k, n, &mut r);
        let pr = GenderPriorities::by_id(k);
        let tree = random_tree(k, &mut r);
        let m = bind(&inst, &tree);
        if is_weakly_stable(&inst, &m, &pr) {
            prop_assert!(is_kary_stable(&inst, &m));
        }
    }

    /// Algorithm 2's output is weakly stable for every seed (Theorem 5).
    #[test]
    fn priority_binding_weakly_stable(seed in 0u64..1_000_000, k in 2usize..5, n in 1usize..5) {
        let inst = kmatch::gen::uniform_kpartite(k, n, &mut rng(seed));
        let pr = GenderPriorities::by_id(k);
        for choice in [AttachChoice::Chain, AttachChoice::HighestPriority] {
            let (m, _) = priority_bind(&inst, &pr, choice);
            prop_assert!(is_weakly_stable(&inst, &m, &pr));
        }
    }

    /// The fair SMP solver always returns a stable marriage.
    #[test]
    fn fair_smp_always_stable(seed in 0u64..1_000_000, n in 1usize..16) {
        let inst = kmatch::gen::uniform_bipartite(n, &mut rng(seed));
        let out = fair_stable_marriage(&inst);
        prop_assert!(is_stable(&inst, &out.matching));
    }

    /// Theorem 1 construction: never a stable binary matching (Irving).
    #[test]
    fn theorem1_never_stable(k in 3usize..6, n in 1usize..8) {
        let rm = kmatch::gen::theorem1_roommates(k, n);
        prop_assert!(!solve_roommates(&rm).is_stable());
    }

    /// The distributed message-passing GS equals the centralized engine
    /// (matching AND proposal count), and the distributed binding equals
    /// sequential Algorithm 1.
    #[test]
    fn distributed_equals_centralized(seed in 0u64..1_000_000, n in 1usize..16) {
        let inst = kmatch::gen::uniform_bipartite(n, &mut rng(seed));
        let central = kmatch::gs::gale_shapley(&inst);
        let dist = kmatch::distsim::distributed_gale_shapley(&inst);
        prop_assert_eq!(dist.matching, central.matching);
        prop_assert_eq!(dist.proposals, central.stats.proposals);
        prop_assert!(dist.net.messages <= 3 * dist.proposals);
    }

    /// Distributed binding across random trees equals sequential binding.
    #[test]
    fn distributed_bind_equals_sequential(seed in 0u64..1_000_000, k in 2usize..6, n in 1usize..6) {
        let mut r = rng(seed);
        let inst = kmatch::gen::uniform_kpartite(k, n, &mut r);
        let tree = random_tree(k, &mut r);
        let schedule = tree_edge_coloring(&tree);
        let dist = kmatch::distsim::distributed_bind(&inst, &tree, &schedule);
        prop_assert_eq!(dist.matching, bind(&inst, &tree));
    }

    /// Polynomial egalitarian SMP (rotation poset + min-cut) equals the
    /// exhaustive lattice optimum.
    #[test]
    fn egalitarian_mincut_equals_lattice(seed in 0u64..1_000_000, n in 1usize..10) {
        let inst = kmatch::gen::uniform_bipartite(n, &mut rng(seed));
        let (m, cost) = kmatch::gs::egalitarian_stable_matching(&inst);
        prop_assert!(kmatch::gs::is_stable(&inst, &m));
        let lattice = kmatch::gs::enumerate_stable_lattice(&inst, 1_000_000).unwrap();
        let best = lattice
            .matchings
            .iter()
            .map(|mm| {
                (0..n as u32)
                    .map(|p| {
                        inst.proposer_rank(p, mm.partner_of_proposer(p)) as u64
                            + inst.responder_rank(p, mm.partner_of_responder(p)) as u64
                    })
                    .sum::<u64>()
            })
            .min()
            .unwrap();
        prop_assert_eq!(cost, best);
    }

    /// The binding-tree optimizer's output is stable and no worse than
    /// the canonical path tree under the same objective.
    #[test]
    fn optimizer_sound(seed in 0u64..1_000_000, k in 3usize..5, n in 2usize..6) {
        let mut r = rng(seed);
        let inst = kmatch::gen::uniform_kpartite(k, n, &mut r);
        let best = kmatch::core::optimize_tree(
            &inst,
            10,
            &mut r,
            kmatch::core::optimize::mean_rank_objective,
        );
        prop_assert!(is_kary_stable(&inst, &best.matching));
        let path_cost = kmatch::core::optimize::mean_rank_objective(
            &inst,
            &bind(&inst, &BindingTree::path(k)),
        );
        prop_assert!(best.objective <= path_cost + 1e-12);
    }

    /// restrict_to_genders is consistent with partitioned binding: binding
    /// the restriction directly equals the per-block matching.
    #[test]
    fn restriction_matches_partitioned(seed in 0u64..1_000_000, blocks in 2usize..4, n in 1usize..5) {
        let k_total = blocks * 2;
        let inst = kmatch::gen::uniform_kpartite(k_total, n, &mut rng(seed));
        let partition = kmatch::core::GenderPartition::contiguous(k_total, 2);
        let out = kmatch::core::partitioned_bind(&inst, &partition);
        for (b, block) in partition.blocks().iter().enumerate() {
            let sub = inst.restrict_to_genders(block);
            let direct = bind(&sub, &BindingTree::path(2));
            prop_assert_eq!(&out.per_block[b], &direct, "block {}", b);
        }
    }

    /// Quorum branch-and-bound equals the naive enumerator.
    #[test]
    fn quorum_bb_equals_naive(seed in 0u64..1_000_000, k in 2usize..4, n in 2usize..4, q in 1usize..4) {
        let q = q.min(k);
        let mut r = rng(seed);
        let inst = kmatch::gen::uniform_kpartite(k, n, &mut r);
        let m = bind(&inst, &random_tree(k, &mut r));
        prop_assert_eq!(
            kmatch::core::find_quorum_blocking_family(&inst, &m, q).is_some(),
            kmatch::core::find_quorum_blocking_family_naive(&inst, &m, q).is_some()
        );
    }

    /// Schedules: tree edge coloring always has depth Δ and is a valid
    /// partition (validated inside Schedule::new).
    #[test]
    fn schedule_depth_is_delta(seed in 0u64..1_000_000, k in 2usize..24) {
        let tree = random_tree(k, &mut rng(seed));
        let s = tree_edge_coloring(&tree);
        prop_assert_eq!(s.depth(), tree.max_degree());
        let total: usize = s.rounds().iter().map(Vec::len).sum();
        prop_assert_eq!(total, k - 1);
    }
}
