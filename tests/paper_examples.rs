//! End-to-end regression of every worked example in the paper, exercising
//! the full crate stack (prefs fixtures → solvers → verifiers).

use kmatch::gs::{all_stable_matchings, gale_shapley, is_stable};
use kmatch::prelude::*;
use kmatch::roommates::brute::all_stable_roommates_matchings;
use kmatch::roommates::matching::{is_roommates_stable, RoommatesMatching};
use kmatch::roommates::oriented_stable_marriage;

#[test]
fn example1_both_preference_sets() {
    // First set: unique stable matching (m', w), (m, w').
    let inst = kmatch::gen::paper::example1_first();
    let out = gale_shapley(&inst);
    assert_eq!(out.matching.partner_of_proposer(0), 1);
    assert_eq!(out.matching.partner_of_proposer(1), 0);
    assert!(is_stable(&inst, &out.matching));
    assert_eq!(all_stable_matchings(&inst).len(), 1);

    // Second set: GS returns the man-optimal of the two stable matchings.
    let inst = kmatch::gen::paper::example1_second();
    let out = gale_shapley(&inst);
    assert_eq!(out.matching.partner_of_proposer(0), 0);
    assert_eq!(out.matching.partner_of_proposer(1), 1);
    assert_eq!(all_stable_matchings(&inst).len(), 2);
}

#[test]
fn figure2_deadlock_resolved_both_ways() {
    let inst = kmatch::gen::paper::fig2_deadlock_smp();
    let woman_opt = oriented_stable_marriage(&inst, SmpOrientation::SeedFromMen);
    assert_eq!(woman_opt.matching.partner_of_proposer(0), 1, "(m, w')");
    let man_opt = oriented_stable_marriage(&inst, SmpOrientation::SeedFromWomen);
    assert_eq!(man_opt.matching.partner_of_proposer(0), 0, "(m, w)");
}

#[test]
fn figure3_all_three_binding_choices() {
    let inst = kmatch::gen::paper::fig3_tripartite();
    // M−W, W−U  →  (m,w,u), (m',w',u').
    let t = BindingTree::new(3, vec![(0, 1), (1, 2)]).unwrap();
    assert_eq!(
        bind(&inst, &t).to_tuples(),
        vec![vec![0, 0, 0], vec![1, 1, 1]]
    );
    // M−U, U−W  →  (m,w',u'), (m',w,u).
    let t = BindingTree::new(3, vec![(0, 2), (2, 1)]).unwrap();
    assert_eq!(
        bind(&inst, &t).to_tuples(),
        vec![vec![0, 1, 1], vec![1, 0, 0]]
    );
    // M−U, M−W  →  (m,w,u'), (m',w',u).
    let t = BindingTree::new(3, vec![(0, 2), (0, 1)]).unwrap();
    assert_eq!(
        bind(&inst, &t).to_tuples(),
        vec![vec![0, 0, 1], vec![1, 1, 0]]
    );
    // All three matchings stable (Theorem 2).
    for edges in [
        vec![(0, 1), (1, 2)],
        vec![(0, 2), (2, 1)],
        vec![(0, 2), (0, 1)],
    ] {
        let t = BindingTree::new(3, edges).unwrap();
        assert!(is_kary_stable(&inst, &bind(&inst, &t)));
    }
}

#[test]
fn section3b_left_trace_outcome() {
    let inst = kmatch::gen::paper::section3b_left();
    // The solver must find a stable matching; the paper's matching
    // (m,u'), (m',w), (w',u) must be among all stable ones.
    let out = solve_roommates(&inst);
    let found = out.matching().expect("stable").clone();
    assert!(is_roommates_stable(&inst, &found));
    let paper = RoommatesMatching::new(vec![5, 2, 1, 4, 3, 0]);
    let all = all_stable_roommates_matchings(&inst);
    assert!(all.contains(&paper), "paper matching is stable");
    assert!(all.contains(&found), "solver output among stable matchings");
}

#[test]
fn section3b_right_no_stable_matching() {
    let inst = kmatch::gen::paper::section3b_right();
    assert!(!solve_roommates(&inst).is_stable());
    assert!(
        all_stable_roommates_matchings(&inst).is_empty(),
        "brute force agrees"
    );
}

#[test]
fn theorem4_cycle_preferences() {
    let inst = kmatch::gen::paper::theorem4_cycle_tripartite();
    assert!(kmatch::core::theorems::overbinding_collapses(&inst));
    // Any spanning tree (2 of the 3 edges) still works and is stable.
    for edges in [
        vec![(0u16, 1u16), (1, 2)],
        vec![(0, 1), (0, 2)],
        vec![(1, 2), (0, 2)],
    ] {
        let t = BindingTree::new(3, edges).unwrap();
        let m = bind(&inst, &t);
        assert!(is_kary_stable(&inst, &m));
    }
}

#[test]
fn figure5_and_6_weakened_condition() {
    let pr = GenderPriorities::by_id(4);
    // Fig. 5(a) tree is not bitonic; Fig. 6's growth procedure yields
    // (k-1)! bitonic trees.
    let fig5a = BindingTree::new(4, vec![(3, 0), (0, 1), (1, 2)]).unwrap();
    assert!(!pr.is_bitonic_under(&fig5a));
    let trees = kmatch::core::all_priority_trees(&pr);
    assert_eq!(trees.len(), 6);
    assert!(trees.iter().all(|t| pr.is_bitonic_under(t)));
}
