//! Workload-model integration tests: the generators' statistical
//! signatures as seen through the solvers.

use kmatch::gs::{gale_shapley, is_stable};
use kmatch::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

#[test]
fn mallows_dispersion_orders_gs_cost() {
    // Lower phi → more agreement → more GS contention → more proposals.
    // Averaged over seeds the ordering must be monotone-ish; we assert the
    // two extremes.
    let n = 64;
    let trials = 15;
    let mut low_phi = 0u64; // phi = 0.1: near-identical lists
    let mut high_phi = 0u64; // phi = 1.0: uniform
    for seed in 0..trials {
        let a = kmatch::gen::mallows_bipartite(n, 0.1, &mut rng(900 + seed));
        low_phi += gale_shapley(&a).stats.proposals;
        let b = kmatch::gen::mallows_bipartite(n, 1.0, &mut rng(900 + seed));
        high_phi += gale_shapley(&b).stats.proposals;
    }
    assert!(
        low_phi > 2 * high_phi,
        "agreement must drive contention: {low_phi} vs {high_phi}"
    );
}

#[test]
fn euclidean_is_benign_identical_is_adversarial() {
    let n = 128;
    let (inst, _, _) = kmatch::gen::euclidean_bipartite(n, &mut rng(901));
    let euclid = gale_shapley(&inst).stats.proposals;
    let ident = gale_shapley(&kmatch::gen::identical_bipartite(n))
        .stats
        .proposals;
    assert!(
        euclid * 4 < ident,
        "geometric preferences must be far below the serial-dictatorship cost: \
         {euclid} vs {ident}"
    );
}

#[test]
fn all_workloads_produce_stable_matchings() {
    let n = 32;
    let mut r = rng(902);
    let instances: Vec<(&str, BipartiteInstance)> = vec![
        ("uniform", kmatch::gen::uniform_bipartite(n, &mut r)),
        (
            "correlated",
            kmatch::gen::correlated_bipartite(n, 8.0, &mut r),
        ),
        ("mallows", kmatch::gen::mallows_bipartite(n, 0.3, &mut r)),
        ("euclidean", kmatch::gen::euclidean_bipartite(n, &mut r).0),
        ("identical", kmatch::gen::identical_bipartite(n)),
        ("cyclic", kmatch::gen::cyclic_bipartite(n)),
    ];
    for (name, inst) in instances {
        let out = gale_shapley(&inst);
        assert!(is_stable(&inst, &out.matching), "{name}");
        let fair = fair_stable_marriage(&inst);
        assert!(is_stable(&inst, &fair.matching), "{name} (fair)");
    }
}

#[test]
fn kpartite_workloads_bind_stably() {
    let (k, n) = (4, 8);
    let mut r = rng(903);
    let instances = vec![
        ("uniform", kmatch::gen::uniform_kpartite(k, n, &mut r)),
        (
            "correlated",
            kmatch::gen::correlated_kpartite(k, n, 8.0, &mut r),
        ),
        ("mallows", kmatch::gen::mallows_kpartite(k, n, 0.3, &mut r)),
        ("euclidean", kmatch::gen::euclidean_kpartite(k, n, &mut r)),
        ("master", kmatch::gen::master_list_kpartite(k, n, true)),
    ];
    for (name, inst) in instances {
        for tree in [BindingTree::path(k), BindingTree::star(k, 0)] {
            let out = bind_with_stats(&inst, &tree);
            assert!(is_kary_stable(&inst, &out.matching), "{name} / {tree}");
            assert!(out.total_proposals() <= ((k - 1) * n * n) as u64, "{name}");
        }
    }
}

#[test]
fn distributed_handles_every_workload() {
    let n = 24;
    let mut r = rng(904);
    for (name, inst) in [
        ("mallows", kmatch::gen::mallows_bipartite(n, 0.2, &mut r)),
        ("euclidean", kmatch::gen::euclidean_bipartite(n, &mut r).0),
        ("identical", kmatch::gen::identical_bipartite(n)),
    ] {
        let central = gale_shapley(&inst);
        let dist = kmatch::distsim::distributed_gale_shapley(&inst);
        assert_eq!(dist.matching, central.matching, "{name}");
        assert_eq!(dist.proposals, central.stats.proposals, "{name}");
        assert!(dist.net.messages <= 3 * dist.proposals, "{name}");
    }
}
