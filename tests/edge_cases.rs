//! Edge cases and failure paths across the public API.

use kmatch::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

#[test]
fn n_equals_one_everywhere() {
    // Single member per gender: everything degenerates gracefully.
    let inst = kmatch::gen::uniform_kpartite(4, 1, &mut rng(1));
    for tree in [
        BindingTree::path(4),
        BindingTree::star(4, 2),
        BindingTree::balanced_binary(4),
    ] {
        let out = bind_with_stats(&inst, &tree);
        assert_eq!(out.matching.n(), 1);
        assert_eq!(out.total_proposals(), 3, "one proposal per binding");
        assert!(is_kary_stable(&inst, &out.matching));
        let pr = GenderPriorities::by_id(4);
        assert!(is_weakly_stable(&inst, &out.matching, &pr));
    }
    // SMP with n = 1.
    let smp = kmatch::gen::uniform_bipartite(1, &mut rng(2));
    assert_eq!(
        kmatch::gs::gale_shapley(&smp)
            .matching
            .partner_of_proposer(0),
        0
    );
    let dist = kmatch::distsim::distributed_gale_shapley(&smp);
    assert_eq!(dist.proposals, 1);
    assert_eq!(dist.net.messages, 2, "one proposal, one accept");
}

#[test]
fn k_equals_two_binding_is_plain_gs() {
    // Algorithm 1 with k = 2 must coincide with GS on the extracted pair.
    let inst = kmatch::gen::uniform_kpartite(2, 10, &mut rng(3));
    let tree = BindingTree::path(2);
    let out = bind_with_stats(&inst, &tree);
    let pair = inst.extract_pair(GenderId(0), GenderId(1));
    let gs = kmatch::gs::gale_shapley(&pair);
    assert_eq!(out.total_proposals(), gs.stats.proposals);
    for f in out.matching.family_ids() {
        let fam = out.matching.family(f);
        assert_eq!(gs.matching.partner_of_proposer(fam[0]), fam[1]);
    }
}

#[test]
fn lattice_on_unique_matching_instances() {
    // Instances engineered for a unique stable matching: lattice size 1,
    // egalitarian == man-optimal == woman-optimal.
    let inst = kmatch::gen::identical_bipartite(8);
    let lattice = kmatch::gs::enumerate_stable_lattice(&inst, 100).unwrap();
    assert_eq!(lattice.matchings.len(), 1, "serial dictatorship is unique");
    let (egal, _) = kmatch::gs::egalitarian_stable_matching(&inst);
    assert_eq!(egal, lattice.matchings[0]);
    assert!(kmatch::gs::all_rotations(&inst).is_empty());
}

#[test]
fn schedule_of_two_genders() {
    let tree = BindingTree::path(2);
    let coloring = tree_edge_coloring(&tree);
    assert_eq!(coloring.depth(), 1);
    let eo = even_odd_path_schedule(&tree).unwrap();
    assert_eq!(eo.depth(), 1);
}

#[test]
fn serde_rejects_corrupted_payloads() {
    use kmatch::prefs::serde_support::{KPartiteDto, RoommatesDto};
    // Tampered k-partite DTO: non-permutation list.
    let inst = kmatch::gen::uniform_kpartite(3, 2, &mut rng(4));
    let mut dto = KPartiteDto::from(&inst);
    dto.lists[0][0][1] = vec![0, 0];
    assert!(KPartiteInstance::try_from(dto).is_err());
    // Tampered roommates DTO: broken mutuality.
    let rm = kmatch::gen::uniform_roommates(4, &mut rng(5));
    let mut dto = RoommatesDto::from(&rm);
    dto.lists[0].pop();
    assert!(RoommatesInstance::try_from(dto).is_err());
}

#[test]
fn quorum_threshold_boundaries() {
    use kmatch::core::{is_quorum_stable, stability_threshold};
    // With n = 1 there is a single family; no tuple spans two families, so
    // the matching is stable at EVERY quorum and the threshold is 1.
    let inst = kmatch::gen::uniform_kpartite(3, 1, &mut rng(6));
    let m = bind(&inst, &BindingTree::path(3));
    for q in 1..=3 {
        assert!(is_quorum_stable(&inst, &m, q));
    }
    assert_eq!(stability_threshold(&inst, &m), Some(1));
}

#[test]
fn priority_tree_count_monotone_construction() {
    // Algorithm 2 at k = 2: a single tree, the single edge.
    let pr = GenderPriorities::by_id(2);
    let trees = kmatch::core::all_priority_trees(&pr);
    assert_eq!(trees.len(), 1);
    assert_eq!(
        trees[0].edges(),
        &[(1, 0)],
        "highest priority proposes to the newcomer"
    );
}

#[test]
fn distributed_bind_on_two_genders() {
    let inst = kmatch::gen::uniform_kpartite(2, 6, &mut rng(7));
    let tree = BindingTree::path(2);
    let schedule = tree_edge_coloring(&tree);
    let out = kmatch::distsim::distributed_bind(&inst, &tree, &schedule);
    assert_eq!(out.matching, bind(&inst, &tree));
    assert_eq!(out.critical_path_rounds, out.per_edge[0].rounds as u64);
}

#[test]
fn viz_handles_degenerate_inputs() {
    use kmatch::viz::{render_kary_matching, render_tree, NameMap};
    let tree = BindingTree::path(2);
    let art = render_tree(&tree);
    assert_eq!(art.lines().count(), 2);
    let inst = kmatch::gen::uniform_kpartite(2, 1, &mut rng(8));
    let m = bind(&inst, &tree);
    let table = render_kary_matching(&inst, &m);
    assert!(table.contains("family 0"));
    let names = NameMap::default();
    assert_eq!(names.of(3), "3", "empty map falls back to indices");
}

#[test]
fn theorem1_smallest_possible_case() {
    // k = 3, n = 1: three nodes, odd total — no perfect matching at all,
    // so Theorem 1's precondition (even node count) matters.
    let rm = kmatch::gen::theorem1_roommates(3, 1);
    assert!(kmatch::roommates::brute::all_perfect_matchings(&rm).is_empty());
    // k = 4, n = 1: even; perfect exists, stable does not.
    let v = kmatch::core::theorem1_verdict(4, 1);
    assert!(v.perfect_exists && !v.stable_exists);
}
